package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// Exporters for barrier telemetry. Three formats are supported so a
// long-running service can expose live barrier health however its
// fleet is scraped:
//
//   - WritePrometheus / Instrumented.MetricsHandler — Prometheus text
//     exposition (version 0.0.4), histograms in native cumulative form.
//   - Snapshot JSON (encoding/json) — the snapshot marshals directly.
//   - Instrumented.Var / Publish — an expvar.Var, so the standard
//     expvar.Handler at /debug/vars picks the telemetry up for free.

// promContentType is the Prometheus text exposition content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeLabel escapes a Prometheus label value.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format. Metric families:
//
//	armbarrier_participants                      gauge
//	armbarrier_rounds_total{participant}         counter
//	armbarrier_spin_iterations_total{participant} counter
//	armbarrier_spin_yields_total{participant}    counter
//	armbarrier_parks_total{participant}          counter
//	armbarrier_wakes_total{participant}          counter
//	armbarrier_fused_rounds_total{participant}   counter
//	armbarrier_wait_latency_ns{participant}      histogram (+_sum,_count)
//	armbarrier_arrival_skew_last_ns{participant} gauge
//	armbarrier_arrival_skew_mean_ns{participant} gauge
//	armbarrier_round_skew_ns                     histogram (+_sum,_count)
//	armbarrier_round_skew_max_ns                 gauge
//
// Elastic barriers (dynamic membership) additionally export
// armbarrier_registered_parties, armbarrier_party_capacity,
// armbarrier_register_total, armbarrier_deregister_total and
// armbarrier_phaser_phase_total.
//
// Every series carries a barrier="<name>" label.
func WritePrometheus(w io.Writer, s Snapshot) error {
	// escapeLabel already produces the exposition-format escapes
	// (\\, \", \n); quoting with %q here would double-escape them.
	bl := `barrier="` + escapeLabel(s.Barrier) + `"`
	var b strings.Builder

	fmt.Fprintf(&b, "# HELP armbarrier_participants Fixed participant count of the barrier.\n")
	fmt.Fprintf(&b, "# TYPE armbarrier_participants gauge\n")
	fmt.Fprintf(&b, "armbarrier_participants{%s} %d\n", bl, s.Participants)

	counter := func(name, help string, val func(ParticipantSnapshot) uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, p := range s.PerParti {
			fmt.Fprintf(&b, "%s{%s,participant=\"%d\"} %d\n", name, bl, p.ID, val(p))
		}
	}
	counter("armbarrier_rounds_total", "Barrier episodes completed per participant.",
		func(p ParticipantSnapshot) uint64 { return p.Rounds })
	counter("armbarrier_spin_iterations_total", "Poll-loop iterations spent waiting inside the barrier.",
		func(p ParticipantSnapshot) uint64 { return p.Spins })
	counter("armbarrier_spin_yields_total", "Scheduler yields taken while waiting inside the barrier.",
		func(p ParticipantSnapshot) uint64 { return p.Yields })
	counter("armbarrier_parks_total", "Goroutine parks taken while waiting inside the barrier.",
		func(p ParticipantSnapshot) uint64 { return p.Parks })
	counter("armbarrier_wakes_total", "Wake tokens handed to this participant by barrier releasers.",
		func(p ParticipantSnapshot) uint64 { return p.Wakes })
	counter("armbarrier_fused_rounds_total", "Rounds that were fused collective episodes (allreduce/reduce/broadcast).",
		func(p ParticipantSnapshot) uint64 { return p.FusedRounds })

	fmt.Fprintf(&b, "# HELP armbarrier_wait_latency_ns Wait-call latency per participant, log2 buckets.\n")
	fmt.Fprintf(&b, "# TYPE armbarrier_wait_latency_ns histogram\n")
	for _, p := range s.PerParti {
		writePromHist(&b, "armbarrier_wait_latency_ns",
			fmt.Sprintf("%s,participant=\"%d\"", bl, p.ID), p.WaitHist, p.WaitSumNs)
	}

	gauge := func(name, help string, val func(ParticipantSnapshot) string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, p := range s.PerParti {
			fmt.Fprintf(&b, "%s{%s,participant=\"%d\"} %s\n", name, bl, p.ID, val(p))
		}
	}
	gauge("armbarrier_arrival_skew_last_ns", "Arrival offset from the round's first arriver, last completed round.",
		func(p ParticipantSnapshot) string { return strconv.FormatInt(p.LastSkewNs, 10) })
	gauge("armbarrier_arrival_skew_mean_ns", "Mean arrival offset from the round's first arriver.",
		func(p ParticipantSnapshot) string { return formatFloat(p.MeanSkewNs) })

	fmt.Fprintf(&b, "# HELP armbarrier_round_skew_ns Per-round spread between first and last arrival, log2 buckets.\n")
	fmt.Fprintf(&b, "# TYPE armbarrier_round_skew_ns histogram\n")
	writePromHist(&b, "armbarrier_round_skew_ns", bl, s.Skew.Hist, s.Skew.SumNs)
	fmt.Fprintf(&b, "# HELP armbarrier_round_skew_max_ns Largest per-round arrival spread observed.\n")
	fmt.Fprintf(&b, "# TYPE armbarrier_round_skew_max_ns gauge\n")
	fmt.Fprintf(&b, "armbarrier_round_skew_max_ns{%s} %d\n", bl, s.Skew.MaxNs)

	// Phase-resolved families, present only under Options.Phases on a
	// PhaseProber barrier:
	//
	//	armbarrier_phase_cost_ns{phase,level}     histogram (+_sum,_count)
	//	armbarrier_phase_cost_p50_ns{phase,level} gauge (NaN sampleless)
	//	armbarrier_phase_cost_max_ns{phase,level} gauge
	//	armbarrier_phase_skew_ns{phase,level}     gauge
	if s.Phases != nil {
		fmt.Fprintf(&b, "# HELP armbarrier_phase_cost_ns Per-(phase,level) step cost on sampled rounds, log2 buckets.\n")
		fmt.Fprintf(&b, "# TYPE armbarrier_phase_cost_ns histogram\n")
		for _, l := range s.Phases.Levels {
			writePromHist(&b, "armbarrier_phase_cost_ns",
				fmt.Sprintf("%s,phase=\"%s\",level=\"%d\"", bl, l.Phase, l.Level),
				l.Hist, l.SumNs)
		}
		phaseGauge := func(name, help string, val func(PhaseLevelSnapshot) float64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for _, l := range s.Phases.Levels {
				fmt.Fprintf(&b, "%s{%s,phase=\"%s\",level=\"%d\"} %s\n",
					name, bl, l.Phase, l.Level, formatFloat(val(l)))
			}
		}
		phaseGauge("armbarrier_phase_cost_p50_ns", "Median per-(phase,level) step cost (NaN when sampleless).",
			func(l PhaseLevelSnapshot) float64 { return l.QuantileNs(0.5) })
		phaseGauge("armbarrier_phase_cost_max_ns", "Largest per-(phase,level) step cost observed.",
			func(l PhaseLevelSnapshot) float64 { return float64(l.MaxNs) })
		phaseGauge("armbarrier_phase_skew_ns", "Spread of per-participant mean cost at this (phase,level).",
			func(l PhaseLevelSnapshot) float64 { return l.SkewNs })
	}

	// Elastic membership families, present only for barriers with
	// dynamic membership (barrier.Phaser):
	//
	//	armbarrier_registered_parties   gauge
	//	armbarrier_party_capacity       gauge
	//	armbarrier_register_total       counter
	//	armbarrier_deregister_total     counter
	//	armbarrier_phaser_phase_total   counter
	if s.Elastic != nil {
		e := s.Elastic
		fmt.Fprintf(&b, "# HELP armbarrier_registered_parties Currently registered parties of the elastic barrier.\n")
		fmt.Fprintf(&b, "# TYPE armbarrier_registered_parties gauge\n")
		fmt.Fprintf(&b, "armbarrier_registered_parties{%s} %d\n", bl, e.Registered)
		fmt.Fprintf(&b, "# HELP armbarrier_party_capacity Slot capacity of the elastic barrier.\n")
		fmt.Fprintf(&b, "# TYPE armbarrier_party_capacity gauge\n")
		fmt.Fprintf(&b, "armbarrier_party_capacity{%s} %d\n", bl, e.Capacity)
		fmt.Fprintf(&b, "# HELP armbarrier_register_total Lifetime party registrations.\n")
		fmt.Fprintf(&b, "# TYPE armbarrier_register_total counter\n")
		fmt.Fprintf(&b, "armbarrier_register_total{%s} %d\n", bl, e.Registers)
		fmt.Fprintf(&b, "# HELP armbarrier_deregister_total Lifetime party deregistrations.\n")
		fmt.Fprintf(&b, "# TYPE armbarrier_deregister_total counter\n")
		fmt.Fprintf(&b, "armbarrier_deregister_total{%s} %d\n", bl, e.Deregisters)
		fmt.Fprintf(&b, "# HELP armbarrier_phaser_phase_total Resolved epochs of the elastic barrier.\n")
		fmt.Fprintf(&b, "# TYPE armbarrier_phaser_phase_total counter\n")
		fmt.Fprintf(&b, "armbarrier_phaser_phase_total{%s} %d\n", bl, e.Phase)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHist emits one histogram series: cumulative le buckets, sum
// and count, as the exposition format requires.
func writePromHist(b *strings.Builder, name, labels string, hist []uint64, sumNs int64) {
	cum := uint64(0)
	for i, c := range hist {
		cum += c
		if c == 0 && i != 0 && i != len(hist)-1 {
			continue // elide empty interior buckets; cumulative counts stay exact
		}
		le := "+Inf"
		if i < len(hist)-1 {
			le = strconv.FormatInt(BucketUpperNs(i), 10)
		}
		fmt.Fprintf(b, "%s_bucket{%s,le=\"%s\"} %d\n", name, labels, le, cum)
	}
	fmt.Fprintf(b, "%s_sum{%s} %d\n", name, labels, sumNs)
	fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, cum)
}

// formatFloat renders a sample value for the text exposition. The
// format admits non-real values only with the exact spellings "NaN",
// "+Inf" and "-Inf"; the streaming layer exports NaN on purpose for
// sampleless windows, so the special cases are handled explicitly
// rather than trusting a formatting verb to spell them right.
func formatFloat(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// MetricsHandler returns an http.Handler serving a live snapshot:
// Prometheus text exposition by default, JSON with ?format=json.
func (in *Instrumented) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := in.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(snap)
			return
		}
		w.Header().Set("Content-Type", promContentType)
		_ = WritePrometheus(w, snap)
	})
}

// Var returns the telemetry as an expvar.Var whose String() is the
// JSON snapshot, compatible with the standard expvar.Handler.
func (in *Instrumented) Var() expvar.Var {
	return expvar.Func(func() any { return in.Snapshot() })
}

// Publish registers the telemetry under name in the process-wide expvar
// registry (it appears at /debug/vars). Like expvar.Publish, it panics
// on a duplicate name.
func (in *Instrumented) Publish(name string) {
	expvar.Publish(name, in.Var())
}
