package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Chrome trace-event export: captured episodes serialize to the JSON
// object format understood by Perfetto (ui.perfetto.dev) and
// chrome://tracing — one process per barrier, one thread row per
// participant, a complete ("X") slice per Wait from arrival to
// release, and an instant marker per episode carrying skew and worst
// wait. Timestamps are microseconds (the format's unit) measured from
// the tracer's creation.

// chromeEvent is one entry of the trace-event array. Cname selects one
// of the viewer's reserved colors, used to tell arrival slices from
// wake-up slices at a glance.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	S     string         `json:"s,omitempty"`
	Cname string         `json:"cname,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format wrapper.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeGroup is one barrier's episodes for WriteChromeTrace; each
// group becomes a separate process row in the trace viewer.
type ChromeGroup struct {
	Name     string
	Episodes []Episode
}

// WriteChromeTrace writes the groups' episodes as Chrome trace-event
// JSON, loadable in Perfetto or chrome://tracing.
func WriteChromeTrace(w io.Writer, groups ...ChromeGroup) error {
	var events []chromeEvent
	for gi, g := range groups {
		pid := gi + 1
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": g.Name},
		})
		threadsNamed := 0
		for _, ep := range g.Episodes {
			for threadsNamed < len(ep.Parts) {
				events = append(events, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: threadsNamed,
					Args: map[string]any{"name": "participant " + strconv.Itoa(threadsNamed)},
				})
				threadsNamed++
			}
			events = append(events, chromeEvent{
				Name: "episode " + strconv.FormatUint(ep.Round, 10),
				Cat:  "barrier", Ph: "i", S: "p",
				Ts: float64(ep.StartNs) / 1e3, Pid: pid, Tid: ep.LastArriver(),
				Args: map[string]any{
					"round":        ep.Round,
					"skew_ns":      ep.SkewNs,
					"max_wait_ns":  ep.MaxWaitNs,
					"last_arriver": ep.LastArriver(),
				},
			})
			for _, p := range ep.Parts {
				events = append(events, chromeEvent{
					Name: "wait",
					Cat:  "barrier", Ph: "X",
					Ts:  float64(p.ArriveNs) / 1e3,
					Dur: float64(p.WaitNs()) / 1e3,
					Pid: pid, Tid: p.ID,
					Args: map[string]any{
						"round":     ep.Round,
						"wait_ns":   p.WaitNs(),
						"offset_ns": p.ArriveNs - ep.StartNs,
					},
				})
				// Phase marks subdivide the wait into nested slices, one
				// per probe segment, colored per phase (arrival green,
				// wake-up orange) so the two phases read apart instantly.
				prev := p.ArriveNs
				for _, m := range p.Marks {
					cname := "thread_state_running"
					if m.Phase == "wakeup" {
						cname = "thread_state_iowait"
					}
					events = append(events, chromeEvent{
						Name: m.Phase + " L" + strconv.Itoa(m.Level),
						Cat:  "phase", Ph: "X",
						Ts:  float64(prev) / 1e3,
						Dur: float64(m.AtNs-prev) / 1e3,
						Pid: pid, Tid: p.ID,
						Cname: cname,
						Args: map[string]any{
							"round":      ep.Round,
							"phase":      m.Phase,
							"level":      m.Level,
							"segment_ns": m.AtNs - prev,
						},
					})
					prev = m.AtNs
				}
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ns"})
}

// WriteChromeTrace writes this tracer's kept episodes (worst first) as
// Chrome trace-event JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, ChromeGroup{Name: t.Name(), Episodes: t.Episodes()})
}

// EpisodesHandler returns an http.Handler serving the kept episodes
// live, for a /debug/episodes endpoint:
//
//	(default)        JSON: barrier, trigger count, episodes (worst first)
//	?format=gantt    text Gantt lanes plus the straggler report
//	?format=chrome   Chrome trace-event JSON for Perfetto
func (t *Tracer) EpisodesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		eps := t.Episodes()
		switch r.URL.Query().Get("format") {
		case "gantt":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "%s: %d captured episodes (%d triggers total)\n\n",
				t.Name(), len(eps), t.Triggered())
			for _, ep := range eps {
				fmt.Fprintf(w, "round %d: skew %d ns, max wait %d ns\n%s\n",
					ep.Round, ep.SkewNs, ep.MaxWaitNs, ep.Gantt(72))
			}
			io.WriteString(w, Stragglers(eps).Format(0))
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			_ = t.WriteChromeTrace(w)
		default:
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Barrier   string    `json:"barrier"`
				Triggered uint64    `json:"triggered"`
				Episodes  []Episode `json:"episodes"`
			}{t.Name(), t.Triggered(), eps})
		}
	})
}
