package obs

import (
	"fmt"
	"math"
	"strings"
)

// Straggler attribution: across a set of captured episodes, which
// participants are persistently the last to arrive? A participant that
// is last in most episodes points at a structural cause (an unbalanced
// phase, an overloaded core, a slow NUMA domain) rather than noise —
// the real-substrate version of the paper's arrival-serialization
// diagnosis.

// StragglerStat is one participant's attribution across episodes.
type StragglerStat struct {
	ID int `json:"id"`
	// LastCount / FirstCount are the episodes where this participant
	// arrived last / first (arrival-stamp ties count for each holder).
	LastCount  int `json:"last_count"`
	FirstCount int `json:"first_count"`
	// MeanOffsetNs is the mean arrival offset from each episode's
	// first arriver.
	MeanOffsetNs float64 `json:"mean_offset_ns"`
}

// StragglerReport aggregates attribution over a set of episodes.
type StragglerReport struct {
	Episodes int             `json:"episodes"`
	Stats    []StragglerStat `json:"stats"`
}

// Stragglers attributes the episodes' arrival order per participant.
// Episodes whose participant count differs from the first one's are
// skipped (mixed-shape input).
func Stragglers(eps []Episode) StragglerReport {
	if len(eps) == 0 {
		return StragglerReport{}
	}
	p := len(eps[0].Parts)
	stats := make([]StragglerStat, p)
	for i := range stats {
		stats[i].ID = i
	}
	counted := 0
	for _, ep := range eps {
		if len(ep.Parts) != p {
			continue
		}
		counted++
		first, last := int64(math.MaxInt64), int64(math.MinInt64)
		for _, part := range ep.Parts {
			first = min(first, part.ArriveNs)
			last = max(last, part.ArriveNs)
		}
		for _, part := range ep.Parts {
			if part.ID < 0 || part.ID >= p {
				continue
			}
			s := &stats[part.ID]
			s.MeanOffsetNs += float64(part.ArriveNs - first)
			if part.ArriveNs == last {
				s.LastCount++
			}
			if part.ArriveNs == first {
				s.FirstCount++
			}
		}
	}
	if counted > 0 {
		for i := range stats {
			stats[i].MeanOffsetNs /= float64(counted)
		}
	}
	return StragglerReport{Episodes: counted, Stats: stats}
}

// Persistent reports the IDs of participants that were last in more
// than half of the episodes.
func (r StragglerReport) Persistent() []int {
	var out []int
	for _, s := range r.Stats {
		if r.Episodes > 0 && s.LastCount*2 > r.Episodes {
			out = append(out, s.ID)
		}
	}
	return out
}

// GroupLastCounts sums LastCount per contiguous group of groupSize
// participants (group g covers IDs [g*groupSize, (g+1)*groupSize)) —
// a quick test of whether stragglers cluster by topology group.
func (r StragglerReport) GroupLastCounts(groupSize int) []int {
	if groupSize <= 0 || len(r.Stats) == 0 {
		return nil
	}
	counts := make([]int, (len(r.Stats)+groupSize-1)/groupSize)
	for _, s := range r.Stats {
		counts[s.ID/groupSize] += s.LastCount
	}
	return counts
}

// Format renders the report as text. A positive groupSize appends the
// per-group clustering view.
func (r StragglerReport) Format(groupSize int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "straggler attribution over %d captured episodes:\n", r.Episodes)
	if r.Episodes == 0 {
		return b.String()
	}
	for _, s := range r.Stats {
		mark := ""
		if s.LastCount*2 > r.Episodes {
			mark = "  <- persistent straggler"
		}
		fmt.Fprintf(&b, "  p%02d: last %d/%d, first %d/%d, mean arrival offset %.0f ns%s\n",
			s.ID, s.LastCount, r.Episodes, s.FirstCount, r.Episodes, s.MeanOffsetNs, mark)
	}
	if counts := r.GroupLastCounts(groupSize); counts != nil && len(counts) > 1 {
		fmt.Fprintf(&b, "  last arrivals by group of %d:\n", groupSize)
		for g, c := range counts {
			lo := g * groupSize
			hi := min(lo+groupSize-1, len(r.Stats)-1)
			fmt.Fprintf(&b, "    g%02d (p%02d-p%02d): %d\n", g, lo, hi, c)
		}
	}
	return b.String()
}
