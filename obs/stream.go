package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"armbarrier/barrier"
	"armbarrier/tune"
)

// Stream is the always-on time-series layer over an Instrumented
// barrier: a fixed-interval rotator drains the cacheline-padded
// per-participant accumulators into a ring of per-window rollups
// (episode rate, wait quantiles, arrival skew, spin/yield/park/wake
// rates, timeout/panic/watchdog counts), and online detectors run per
// rotation — regime classification, Page-Hinkley change-point
// detection on p99 wait and skew, and cross-window straggler
// persistence scoring (see detect.go, alert.go).
//
// The point-in-time Snapshot and the triggered flight recorder answer
// "what does the barrier look like now" and "what did the worst round
// look like"; the Stream answers the question the paper's
// regime-dependent results make unavoidable: *when did the behaviour
// change*. Nothing is added to the Wait hot path — a rotation is one
// Snapshot (atomic loads of the shards participants already write)
// plus O(windows) bookkeeping, so the layer stays inside the <10%
// instrumentation budget at any realistic window (the overhead guard
// enforces it at 100ms).
//
//	ins := obs.Instrument(barrier.New(8), obs.Options{})
//	st := obs.NewStream(ins, obs.StreamOptions{Window: time.Second})
//	st.Start()
//	defer st.Stop()
//	http.Handle("/debug/timeline", st.TimelineHandler())
type Stream struct {
	in     *Instrumented
	opts   StreamOptions
	window time.Duration

	// timeouts/panics are external event feeds (RecordTimeout /
	// RecordPanic), drained into the current window at rotation.
	timeouts atomic.Uint64
	panics   atomic.Uint64

	mu          sync.Mutex
	prev        Snapshot
	prevNowNs   int64
	prevStalls  uint64
	windows     []WindowStats
	rotations   uint64
	det         detectors
	alerts      []Alert
	alertCounts map[AlertKind]uint64
	// cumulative totals for the counter-typed exports
	totTimeouts, totPanics, totStalls uint64

	runMu sync.Mutex // serializes Start/Stop
	stop  chan struct{}
	done  chan struct{}
}

// DefaultWindow is the default rotation interval. One second keeps the
// rollup cost negligible while still bounding how stale a regime
// classification can be; latency-sensitive services run 100ms windows
// and stay within the overhead budget.
const DefaultWindow = time.Second

// DefaultWindowCapacity is the default ring size: ten minutes of
// 1-second windows.
const DefaultWindowCapacity = 600

// maxAlerts bounds the kept alert history.
const maxAlerts = 128

// StreamOptions configures NewStream.
type StreamOptions struct {
	// Window is the rotation interval (default DefaultWindow).
	Window time.Duration
	// Capacity is how many windows the ring keeps (default
	// DefaultWindowCapacity).
	Capacity int
	// Watchdog, when non-nil, folds the stall detector's counters into
	// each window (WatchdogStalls) and raises AlertWatchdogStall.
	Watchdog *barrier.Watchdog
	// Drift, when non-nil, is observed once per rotation: the board
	// closes a drift window on the same cadence as the rollups, and
	// any AlertModelDrift it raises joins the stream's alert history
	// and OnAlert dispatch.
	Drift *DriftBoard
	// OnAlert, if non-nil, is called once per raised alert, after the
	// rotation that raised it completes (never under the stream's
	// lock, so handlers may call Timeline/Series/Alerts freely). The
	// same contract as barrier.WatchdogConfig.OnStall.
	OnAlert func(Alert)
	// Detect tunes the online detectors; zero fields take defaults.
	Detect DetectorOptions
}

// WindowStats is one window's rollup. Rate fields are per second of
// wall clock; quantiles come from the window's own histogram delta, so
// they describe only this window. A window with Rounds == 0 is idle;
// quantile fields are 0 then (WaitSamples / SkewRounds say whether the
// quantiles are backed by data — the Prometheus export turns
// sampleless quantiles into NaN).
type WindowStats struct {
	// Index is the rotation number, monotonically increasing even
	// after old windows leave the ring.
	Index uint64 `json:"index"`
	// StartNs/EndNs bound the window on the stream's monotonic clock
	// (the Instrumented base).
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns"`

	// Rounds is the number of fully completed episodes this window;
	// WaitSamples and SkewRounds count how many of them carried full
	// timing (one in Options.SampleEvery).
	Rounds      uint64 `json:"rounds"`
	WaitSamples uint64 `json:"wait_samples"`
	SkewRounds  uint64 `json:"skew_rounds"`

	EpisodeRate float64 `json:"episode_rate"`

	WaitP50Ns  float64 `json:"wait_p50_ns"`
	WaitP99Ns  float64 `json:"wait_p99_ns"`
	WaitMaxNs  float64 `json:"wait_max_ns"`
	WaitMeanNs float64 `json:"wait_mean_ns"`

	SkewMeanNs float64 `json:"skew_mean_ns"`
	SkewP99Ns  float64 `json:"skew_p99_ns"`
	SkewMaxNs  float64 `json:"skew_max_ns"`

	SpinRate  float64 `json:"spin_rate"`
	YieldRate float64 `json:"yield_rate"`
	ParkRate  float64 `json:"park_rate"`
	WakeRate  float64 `json:"wake_rate"`
	// ParksPerRound/YieldsPerRound are per participant-round averages,
	// the regime detector's inputs.
	ParksPerRound  float64 `json:"parks_per_round"`
	YieldsPerRound float64 `json:"yields_per_round"`

	Timeouts       uint64 `json:"timeouts"`
	Panics         uint64 `json:"panics"`
	WatchdogStalls uint64 `json:"watchdog_stalls"`

	// Regime is the stream's confirmed regime after this window's
	// classification was folded in (tune vocabulary).
	Regime tune.Regime `json:"regime"`
	// Straggler is the participant this window's skew named slow, -1
	// when none; StragglerSkewNs is its mean arrival offset. A single
	// slow window is not an alert — see DetectorOptions.StragglerWindows.
	Straggler       int     `json:"straggler"`
	StragglerSkewNs float64 `json:"straggler_skew_ns"`
}

// NewStream attaches a stream to in. The stream starts idle: call
// Start for background rotation, or Rotate to drive windows manually
// (tests, batch runs). The baseline is in's telemetry at NewStream
// time, so rollups never double-count history.
func NewStream(in *Instrumented, opts StreamOptions) *Stream {
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultWindowCapacity
	}
	s := &Stream{
		in:          in,
		opts:        opts,
		window:      opts.Window,
		prev:        in.Snapshot(),
		prevNowNs:   in.now(),
		det:         newDetectors(opts.Detect),
		alertCounts: make(map[AlertKind]uint64),
	}
	if opts.Watchdog != nil {
		s.prevStalls = opts.Watchdog.Snapshot().Stalls
	}
	return s
}

// Window returns the configured rotation interval.
func (s *Stream) Window() time.Duration { return s.window }

// RecordTimeout feeds one barrier.TimeoutError observation into the
// current window. The barrier cannot count these itself (the timeout
// unwinds through the caller), so whoever handles the error reports it.
func (s *Stream) RecordTimeout() { s.timeouts.Add(1) }

// RecordPanic feeds one *barrier.PanicError observation into the
// current window.
func (s *Stream) RecordPanic() { s.panics.Add(1) }

// Start launches the background rotator. Stop halts it; Start after
// Stop restarts it.
func (s *Stream) Start() {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if s.stop != nil {
		return // already running
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(s.window)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Rotate()
			case <-stop:
				return
			}
		}
	}(s.stop, s.done)
}

// Stop halts the background rotator and flushes the in-progress
// partial window so short runs still produce a series. Safe to call
// without Start (it just flushes).
func (s *Stream) Stop() {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if s.stop != nil {
		close(s.stop)
		<-s.done
		s.stop, s.done = nil, nil
	}
	s.Rotate()
}

// Rotate closes the current window now: it snapshots the instrumented
// barrier, rolls the delta since the previous rotation into a
// WindowStats, runs the detectors, and fires any raised alerts. The
// background rotator calls this on every tick; tests and batch tools
// call it directly.
func (s *Stream) Rotate() {
	snap := s.in.Snapshot()
	stalls := s.prevStallCount()
	fired := s.ingest(snap, stalls, s.in.now())
	if s.opts.Drift != nil {
		if drifted := s.opts.Drift.Observe(); len(drifted) > 0 {
			s.mu.Lock()
			for _, a := range drifted {
				s.alerts = append(s.alerts, a)
				s.alertCounts[a.Kind]++
			}
			if over := len(s.alerts) - maxAlerts; over > 0 {
				s.alerts = append(s.alerts[:0], s.alerts[over:]...)
			}
			s.mu.Unlock()
			fired = append(fired, drifted...)
		}
	}
	s.dispatch(fired)
}

// prevStallCount reads the watchdog's cumulative stall counter (0
// without a watchdog).
func (s *Stream) prevStallCount() uint64 {
	if s.opts.Watchdog == nil {
		return 0
	}
	return s.opts.Watchdog.Snapshot().Stalls
}

// dispatch invokes OnAlert for each fired alert, outside the lock.
func (s *Stream) dispatch(fired []Alert) {
	if s.opts.OnAlert == nil {
		return
	}
	for _, a := range fired {
		s.opts.OnAlert(a)
	}
}

// safeSub is a - b for monotonic counters, clamped at 0 so a torn
// snapshot can never produce a huge wrap-around delta.
func safeSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// ingest is the rotation core, separated from Rotate so tests can
// drive deterministic synthetic snapshots through the full rollup +
// detector path. It returns the alerts this window raised.
func (s *Stream) ingest(cur Snapshot, stalls uint64, nowNs int64) []Alert {
	s.mu.Lock()
	defer s.mu.Unlock()

	prev := s.prev
	w := WindowStats{
		Index:     s.rotations,
		StartNs:   s.prevNowNs,
		EndNs:     nowNs,
		Straggler: -1,
	}
	dtNs := nowNs - s.prevNowNs
	if dtNs < 1 {
		dtNs = 1
	}
	perSec := float64(time.Second) / float64(dtNs)

	w.Rounds = safeSub(cur.TotalRounds(), prev.TotalRounds())
	w.EpisodeRate = float64(w.Rounds) * perSec

	// Per-participant deltas: counters, the merged wait histogram, and
	// each participant's mean arrival offset this window (the straggler
	// detector's input).
	var spins, yields, parks, wakes uint64
	var waitSum int64
	waitHist := make([]uint64, NumBuckets)
	var prevWaitMax, curWaitMax int64
	offsets := make([]float64, len(cur.PerParti))
	skewRounds := safeSub(cur.Skew.Rounds, prev.Skew.Rounds)
	for i := range cur.PerParti {
		c := cur.PerParti[i]
		var p ParticipantSnapshot
		if i < len(prev.PerParti) {
			p = prev.PerParti[i]
		}
		spins += safeSub(c.Spins, p.Spins)
		yields += safeSub(c.Yields, p.Yields)
		parks += safeSub(c.Parks, p.Parks)
		wakes += safeSub(c.Wakes, p.Wakes)
		waitSum += c.WaitSumNs - p.WaitSumNs
		for b := range c.WaitHist {
			if b >= NumBuckets {
				break
			}
			var pb uint64
			if b < len(p.WaitHist) {
				pb = p.WaitHist[b]
			}
			waitHist[b] += safeSub(c.WaitHist[b], pb)
		}
		if c.WaitMaxNs > curWaitMax {
			curWaitMax = c.WaitMaxNs
		}
		if p.WaitMaxNs > prevWaitMax {
			prevWaitMax = p.WaitMaxNs
		}
		if skewRounds > 0 {
			offsets[i] = float64(c.SkewSumNs-p.SkewSumNs) / float64(skewRounds)
		}
	}
	for _, c := range waitHist {
		w.WaitSamples += c
	}
	w.SkewRounds = skewRounds
	w.SpinRate = float64(spins) * perSec
	w.YieldRate = float64(yields) * perSec
	w.ParkRate = float64(parks) * perSec
	w.WakeRate = float64(wakes) * perSec
	if pr := float64(w.Rounds) * float64(len(cur.PerParti)); pr > 0 {
		w.ParksPerRound = float64(parks) / pr
		w.YieldsPerRound = float64(yields) / pr
	}

	if w.WaitSamples > 0 {
		w.WaitP50Ns = HistQuantileNs(waitHist, 0.5)
		w.WaitP99Ns = HistQuantileNs(waitHist, 0.99)
		w.WaitMeanNs = float64(waitSum) / float64(w.WaitSamples)
		// The cumulative max only moves when a new extreme completes;
		// if it moved this window, that extreme *is* this window's max.
		// Otherwise estimate from the window's own histogram.
		if curWaitMax > prevWaitMax {
			w.WaitMaxNs = float64(curWaitMax)
		} else {
			w.WaitMaxNs = HistQuantileNs(waitHist, 1)
		}
	}

	if skewRounds > 0 {
		skewHist := make([]uint64, NumBuckets)
		for b := range cur.Skew.Hist {
			if b >= NumBuckets {
				break
			}
			var pb uint64
			if b < len(prev.Skew.Hist) {
				pb = prev.Skew.Hist[b]
			}
			skewHist[b] += safeSub(cur.Skew.Hist[b], pb)
		}
		w.SkewMeanNs = float64(cur.Skew.SumNs-prev.Skew.SumNs) / float64(skewRounds)
		w.SkewP99Ns = HistQuantileNs(skewHist, 0.99)
		if cur.Skew.MaxNs > prev.Skew.MaxNs {
			w.SkewMaxNs = float64(cur.Skew.MaxNs)
		} else {
			w.SkewMaxNs = HistQuantileNs(skewHist, 1)
		}
	}

	w.Timeouts = s.timeouts.Swap(0)
	w.Panics = s.panics.Swap(0)
	w.WatchdogStalls = safeSub(stalls, s.prevStalls)
	s.totTimeouts += w.Timeouts
	s.totPanics += w.Panics
	s.totStalls += w.WatchdogStalls

	// Online detectors: regime classification, change points,
	// straggler persistence. They fill w.Regime/w.Straggler and return
	// the alerts this window raised.
	fired := s.det.observe(&w, len(cur.PerParti), offsets)
	for i := range fired {
		fired[i].Barrier = cur.Barrier
		s.alerts = append(s.alerts, fired[i])
		s.alertCounts[fired[i].Kind]++
	}
	if over := len(s.alerts) - maxAlerts; over > 0 {
		s.alerts = append(s.alerts[:0], s.alerts[over:]...)
	}

	s.windows = append(s.windows, w)
	if over := len(s.windows) - s.opts.Capacity; over > 0 {
		s.windows = append(s.windows[:0], s.windows[over:]...)
	}
	s.rotations++
	s.prev = cur
	s.prevNowNs = nowNs
	s.prevStalls = stalls
	return fired
}

// Series returns a copy of the kept windows, oldest first.
func (s *Stream) Series() []WindowStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WindowStats, len(s.windows))
	copy(out, s.windows)
	return out
}

// Last returns the most recent window (ok false before the first
// rotation).
func (s *Stream) Last() (WindowStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.windows) == 0 {
		return WindowStats{}, false
	}
	return s.windows[len(s.windows)-1], true
}

// Alerts returns a copy of the kept alert history, oldest first.
func (s *Stream) Alerts() []Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Alert, len(s.alerts))
	copy(out, s.alerts)
	return out
}

// Regime returns the stream's current confirmed regime.
func (s *Stream) Regime() tune.Regime {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.det.regime
}

// Straggler returns the participant currently under a persistent
// straggler alert, or (-1, false) when none is active.
func (s *Stream) Straggler() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.det.stragglerActive {
		return -1, false
	}
	return s.det.straggler, true
}
