package obs_test

import (
	"testing"
	"time"

	"armbarrier/barrier"
	"armbarrier/internal/faultinject"
	"armbarrier/obs"
)

// TestStreamStragglerFaultInjection drives the straggler detector end
// to end: a deterministic faultinject.Delay on one participant makes
// it persistently late, the stream must name exactly that participant
// after the configured persistence window, and must clear the alert
// after the faults run out.
//
// The injector wraps OUTSIDE the instrumentation — participant →
// Injector → Instrumented → barrier — so the injected delay happens
// before the arrival stamp and shows up as that participant's arrival
// skew, exactly like a genuinely slow worker would.
func TestStreamStragglerFaultInjection(t *testing.T) {
	const (
		p            = 4
		culprit      = 2
		slowPhases   = 3
		cleanPhases  = 2
		phaseRounds  = 10
		injectedLate = 5 * time.Millisecond
	)

	var faults []faultinject.Fault
	for r := uint64(0); r < slowPhases*phaseRounds; r++ {
		faults = append(faults, faultinject.Fault{ID: culprit, Round: r, Kind: faultinject.Delay, Delay: injectedLate})
	}

	ins := obs.Instrument(barrier.New(p), obs.Options{Name: "straggler", SampleEvery: 1})
	inj := faultinject.Wrap(ins, faults...)
	st := obs.NewStream(ins, obs.StreamOptions{Detect: obs.DetectorOptions{
		StragglerWindows: slowPhases,
		// The floor sits well above scheduling noise and well below the
		// injected delay, so only the fault can name a culprit.
		StragglerMinNs:  float64(injectedLate) / 5,
		StragglerFactor: 4,
	}})

	phase := func() {
		barrier.Run(inj, func(id int) {
			for r := 0; r < phaseRounds; r++ {
				inj.Wait(id)
			}
		})
		st.Rotate()
	}

	for i := 0; i < slowPhases; i++ {
		phase()
	}
	if id, active := st.Straggler(); !active || id != culprit {
		t.Fatalf("after %d slow windows Straggler() = (%d, %v), want (%d, true)", slowPhases, id, active, culprit)
	}
	var stragglers []obs.Alert
	for _, a := range st.Alerts() {
		if a.Kind == obs.AlertStraggler {
			stragglers = append(stragglers, a)
		}
	}
	if len(stragglers) != 1 || stragglers[0].Participant != culprit {
		t.Fatalf("straggler alerts = %v, want exactly one naming participant %d", stragglers, culprit)
	}
	if w, ok := st.Last(); !ok || w.Straggler != culprit {
		t.Errorf("last slow window blames %d, want %d", w.Straggler, culprit)
	}
	if got := float64(injectedLate); stragglers[0].Value < got/2 {
		t.Errorf("alert offset = %.0f ns, want around the injected %.0f ns", stragglers[0].Value, got)
	}

	// Faults exhausted: the participant recovers and the alert clears.
	for i := 0; i < cleanPhases; i++ {
		phase()
	}
	if id, active := st.Straggler(); active {
		t.Fatalf("straggler alert still active after recovery: participant %d", id)
	}
	cleared := false
	for _, a := range st.Alerts() {
		if a.Kind == obs.AlertStragglerCleared && a.Participant == culprit {
			cleared = true
		}
	}
	if !cleared {
		t.Fatalf("no AlertStragglerCleared for participant %d in %v", culprit, st.Alerts())
	}
	if got := inj.Injected(); got != slowPhases*phaseRounds {
		t.Errorf("injector fired %d faults, want %d", got, slowPhases*phaseRounds)
	}
}
