package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"time"

	"armbarrier/internal/plot"
	"armbarrier/tune"
)

// Exporters for the streaming telemetry layer: a Prometheus exposition
// of the current window (with a regime label), a JSON timeline of the
// whole ring, and an ASCII-sparkline rendering for terminals — all
// three served by TimelineHandler, so /debug/timeline is the one URL a
// fleet needs.

// StreamSnapshot is a consistent copy of a stream's state: the kept
// windows (oldest first), the alert history, and the current detector
// conclusions.
type StreamSnapshot struct {
	Barrier      string `json:"barrier"`
	Participants int    `json:"participants"`
	WindowNs     int64  `json:"window_ns"`
	// Rotations counts every window ever rolled, including those that
	// have left the ring.
	Rotations uint64 `json:"rotations"`
	// Regime is the current confirmed regime; Straggler the
	// participant under an active straggler alert (-1 none).
	Regime    tune.Regime `json:"regime"`
	Straggler int         `json:"straggler"`
	// Totals for the counter-style exports.
	Timeouts       uint64 `json:"timeouts_total"`
	Panics         uint64 `json:"panics_total"`
	WatchdogStalls uint64 `json:"watchdog_stalls_total"`

	Windows []WindowStats     `json:"windows"`
	Alerts  []Alert           `json:"alerts"`
	Counts  map[string]uint64 `json:"alert_counts"`
}

// Timeline captures the stream's current state. Safe to call at any
// time, including concurrently with rotations.
func (s *Stream) Timeline() StreamSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := StreamSnapshot{
		Barrier:        s.in.Name(),
		Participants:   s.in.Participants(),
		WindowNs:       int64(s.window),
		Rotations:      s.rotations,
		Regime:         s.det.regime,
		Straggler:      -1,
		Timeouts:       s.totTimeouts,
		Panics:         s.totPanics,
		WatchdogStalls: s.totStalls,
		Windows:        make([]WindowStats, len(s.windows)),
		Alerts:         make([]Alert, len(s.alerts)),
		Counts:         make(map[string]uint64, len(s.alertCounts)),
	}
	if s.det.stragglerActive {
		out.Straggler = s.det.straggler
	}
	copy(out.Windows, s.windows)
	copy(out.Alerts, s.alerts)
	for k, c := range s.alertCounts {
		out.Counts[k.String()] = c
	}
	return out
}

// WriteStreamPrometheus writes the stream snapshot in Prometheus text
// exposition format. Metric families (every series carries
// barrier="<name>"; window gauges carry regime="<current>"):
//
//	armbarrier_stream_window_seconds             gauge
//	armbarrier_stream_rotations_total            counter
//	armbarrier_stream_regime{regime}             gauge (one-hot)
//	armbarrier_stream_episode_rate               gauge
//	armbarrier_stream_wait_p50_ns / _p99_ns / _max_ns  gauge (NaN when sampleless)
//	armbarrier_stream_skew_mean_ns / _p99_ns     gauge (NaN when sampleless)
//	armbarrier_stream_spin_rate / _yield_rate / _park_rate / _wake_rate  gauge
//	armbarrier_stream_straggler                  gauge (participant id, -1 none)
//	armbarrier_stream_timeouts_total / _panics_total / _watchdog_stalls_total  counter
//	armbarrier_stream_alerts_total{kind}         counter
func WriteStreamPrometheus(w io.Writer, s StreamSnapshot) error {
	bl := `barrier="` + escapeLabel(s.Barrier) + `"`
	var b strings.Builder

	fmt.Fprintf(&b, "# HELP armbarrier_stream_window_seconds Configured rotation interval.\n")
	fmt.Fprintf(&b, "# TYPE armbarrier_stream_window_seconds gauge\n")
	fmt.Fprintf(&b, "armbarrier_stream_window_seconds{%s} %s\n", bl, formatFloat(float64(s.WindowNs)/1e9))

	fmt.Fprintf(&b, "# HELP armbarrier_stream_rotations_total Windows rolled since the stream attached.\n")
	fmt.Fprintf(&b, "# TYPE armbarrier_stream_rotations_total counter\n")
	fmt.Fprintf(&b, "armbarrier_stream_rotations_total{%s} %d\n", bl, s.Rotations)

	fmt.Fprintf(&b, "# HELP armbarrier_stream_regime Current confirmed scheduling regime (one-hot).\n")
	fmt.Fprintf(&b, "# TYPE armbarrier_stream_regime gauge\n")
	for _, r := range []tune.Regime{tune.RegimeUnknown, tune.RegimeDedicated, tune.RegimeOversubscribed} {
		v := 0
		if r == s.Regime {
			v = 1
		}
		fmt.Fprintf(&b, "armbarrier_stream_regime{%s,regime=\"%s\"} %d\n", bl, r, v)
	}

	// Current-window gauges. Before the first rotation every gauge is
	// NaN: there is no window to describe.
	var last WindowStats
	haveWindow := len(s.Windows) > 0
	if haveWindow {
		last = s.Windows[len(s.Windows)-1]
	}
	rl := fmt.Sprintf("%s,regime=\"%s\"", bl, s.Regime)
	gauge := func(name, help string, v float64, sampled bool) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		if !haveWindow || !sampled {
			v = math.NaN()
		}
		fmt.Fprintf(&b, "%s{%s} %s\n", name, rl, formatFloat(v))
	}
	gauge("armbarrier_stream_episode_rate", "Completed episodes per second, current window.", last.EpisodeRate, true)
	gauge("armbarrier_stream_wait_p50_ns", "p50 wait latency, current window.", last.WaitP50Ns, last.WaitSamples > 0)
	gauge("armbarrier_stream_wait_p99_ns", "p99 wait latency, current window.", last.WaitP99Ns, last.WaitSamples > 0)
	gauge("armbarrier_stream_wait_max_ns", "Max wait latency, current window.", last.WaitMaxNs, last.WaitSamples > 0)
	gauge("armbarrier_stream_skew_mean_ns", "Mean arrival skew, current window.", last.SkewMeanNs, last.SkewRounds > 0)
	gauge("armbarrier_stream_skew_p99_ns", "p99 arrival skew, current window.", last.SkewP99Ns, last.SkewRounds > 0)
	gauge("armbarrier_stream_spin_rate", "Spin iterations per second, current window.", last.SpinRate, true)
	gauge("armbarrier_stream_yield_rate", "Scheduler yields per second, current window.", last.YieldRate, true)
	gauge("armbarrier_stream_park_rate", "Goroutine parks per second, current window.", last.ParkRate, true)
	gauge("armbarrier_stream_wake_rate", "Wake tokens per second, current window.", last.WakeRate, true)

	fmt.Fprintf(&b, "# HELP armbarrier_stream_straggler Participant under an active straggler alert, -1 none.\n")
	fmt.Fprintf(&b, "# TYPE armbarrier_stream_straggler gauge\n")
	fmt.Fprintf(&b, "armbarrier_stream_straggler{%s} %d\n", bl, s.Straggler)

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		fmt.Fprintf(&b, "%s{%s} %d\n", name, bl, v)
	}
	counter("armbarrier_stream_timeouts_total", "Barrier wait timeouts reported to the stream.", s.Timeouts)
	counter("armbarrier_stream_panics_total", "Participant panics reported to the stream.", s.Panics)
	counter("armbarrier_stream_watchdog_stalls_total", "Watchdog stalls folded into windows.", s.WatchdogStalls)

	fmt.Fprintf(&b, "# HELP armbarrier_stream_alerts_total Alerts raised by the streaming detectors.\n")
	fmt.Fprintf(&b, "# TYPE armbarrier_stream_alerts_total counter\n")
	for _, kind := range []AlertKind{AlertRegimeShift, AlertChangePoint, AlertStraggler, AlertStragglerCleared, AlertWatchdogStall} {
		fmt.Fprintf(&b, "armbarrier_stream_alerts_total{%s,kind=\"%s\"} %d\n", bl, kind, s.Counts[kind.String()])
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// timelineMetrics are the sparkline rows RenderTimeline draws, in
// order.
var timelineMetrics = []struct {
	name string
	unit string
	val  func(WindowStats) float64
}{
	{"episodes/s", "", func(w WindowStats) float64 { return w.EpisodeRate }},
	{"wait p50", "ns", func(w WindowStats) float64 { return w.WaitP50Ns }},
	{"wait p99", "ns", func(w WindowStats) float64 { return w.WaitP99Ns }},
	{"skew mean", "ns", func(w WindowStats) float64 { return w.SkewMeanNs }},
	{"yields/s", "", func(w WindowStats) float64 { return w.YieldRate }},
	{"parks/s", "", func(w WindowStats) float64 { return w.ParkRate }},
}

// RenderTimeline renders the window series as labelled ASCII
// sparklines plus the current detector conclusions and recent alerts —
// the terminal view of /debug/timeline, shared by the endpoint's
// ?format=text mode and barrierbench -stream. width bounds how many
// windows each sparkline shows (0 means 72).
func RenderTimeline(s StreamSnapshot, width int) string {
	if width <= 0 {
		width = 72
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline %s: %d windows of %v, regime %s\n",
		s.Barrier, len(s.Windows), time.Duration(s.WindowNs), s.Regime)
	wins := s.Windows
	if len(wins) > width {
		wins = wins[len(wins)-width:]
	}
	if len(wins) == 0 {
		b.WriteString("(no windows yet)\n")
		return b.String()
	}
	for _, m := range timelineMetrics {
		xs := make([]float64, len(wins))
		for i, w := range wins {
			xs[i] = m.val(w)
		}
		cur := xs[len(xs)-1]
		fmt.Fprintf(&b, "%12s |%s| now %.6g%s\n", m.name, plot.Sparkline(xs), cur, m.unit)
	}
	last := wins[len(wins)-1]
	fmt.Fprintf(&b, "last window #%d: %d rounds, straggler %s\n",
		last.Index, last.Rounds, stragglerLabel(last.Straggler))
	if n := len(s.Alerts); n > 0 {
		show := s.Alerts
		if len(show) > 8 {
			show = show[len(show)-8:]
		}
		fmt.Fprintf(&b, "alerts (%d total, last %d):\n", n, len(show))
		for _, a := range show {
			fmt.Fprintf(&b, "  [window %d] %s: %s\n", a.Window, a.Kind, a.Message)
		}
	} else {
		b.WriteString("alerts: none\n")
	}
	return b.String()
}

func stragglerLabel(id int) string {
	if id < 0 {
		return "none"
	}
	return fmt.Sprintf("p%d", id)
}

// TimelineHandler returns an http.Handler serving the live timeline:
// JSON by default (the StreamSnapshot document), labelled ASCII
// sparklines with ?format=text, Prometheus text exposition with
// ?format=prom — mount it at /debug/timeline next to /metrics and
// /debug/episodes.
func (s *Stream) TimelineHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := s.Timeline()
		switch r.URL.Query().Get("format") {
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = io.WriteString(w, RenderTimeline(snap, 0))
		case "prom":
			w.Header().Set("Content-Type", promContentType)
			_ = WriteStreamPrometheus(w, snap)
		default:
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(snap)
		}
	})
}
