package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"armbarrier/barrier"
)

// TestBucketOfBoundaries pins the log2 bucket edges the phase (and
// wait) histograms depend on: zero and negatives collapse into bucket
// 0, each bucket i holds [2^(i-1), 2^i), and everything past the last
// finite edge lands in the overflow bucket.
func TestBucketOfBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{(1 << 10) - 1, 10},
		{1 << 10, 11},
		{(1 << 39) - 1, 39},
		{1 << 39, 40},
		{1 << 45, NumBuckets - 1},
		{math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Round-trip against the exported bucket bounds: each finite
	// bucket's inclusive upper edge maps back into it, and the next
	// nanosecond into the next bucket.
	for i := 1; i < NumBuckets-1; i++ {
		up := BucketUpperNs(i)
		if got := bucketOf(up); got != i {
			t.Errorf("bucketOf(BucketUpperNs(%d)=%d) = %d, want %d", i, up, got, i)
		}
		if got := bucketOf(up + 1); got != i+1 {
			t.Errorf("bucketOf(BucketUpperNs(%d)+1) = %d, want %d", i, got, i+1)
		}
	}
}

// TestPhaseQuantileSamplelessNaN pins the sampleless convention: a
// (phase, level) cell with no samples yields NaN quantiles and a
// phase with no sampled level a NaN median sum — matching the stream
// exporter's NaN gauges for empty windows rather than a misleading 0.
func TestPhaseQuantileSamplelessNaN(t *testing.T) {
	empty := PhaseLevelSnapshot{Phase: "arrival", Hist: make([]uint64, NumBuckets)}
	if got := empty.QuantileNs(0.5); !math.IsNaN(got) {
		t.Errorf("empty cell QuantileNs(0.5) = %g, want NaN", got)
	}
	if got := empty.MeanNs(); got != 0 {
		t.Errorf("empty cell MeanNs = %g, want 0", got)
	}
	ps := &PhaseSnapshot{ArrivalLevels: 1, WakeupLevels: 1, Levels: []PhaseLevelSnapshot{
		empty,
		{Phase: "wakeup", Hist: make([]uint64, NumBuckets)},
	}}
	if got := ps.PhaseMedianSumNs("arrival"); !math.IsNaN(got) {
		t.Errorf("sampleless PhaseMedianSumNs = %g, want NaN", got)
	}
	// The Prometheus surface keeps the same convention: the p50 gauge
	// of a sampleless cell must spell NaN, never 0.
	var b strings.Builder
	err := WritePrometheus(&b, Snapshot{Barrier: "x", Phases: ps})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `armbarrier_phase_cost_p50_ns{barrier="x",phase="arrival",level="0"} NaN`) {
		t.Errorf("sampleless p50 gauge not exported as NaN:\n%s", b.String())
	}
}

// TestInstrumentPhases checks the end-to-end armed path: Options.Phases
// over a PhaseProber yields a snapshot whose shape matches the
// barrier's, with samples in the cells, and the same series survives a
// JSON round trip (the /debug/phases payload).
func TestInstrumentPhases(t *testing.T) {
	const p, rounds = 8, 50
	in := Instrument(barrier.New(p), Options{SampleEvery: 1, Phases: true})
	pr := in.Inner().(barrier.PhaseProber)
	arr, wake := pr.PhaseShape()
	barrier.Run(in, func(id int) {
		for r := 0; r < rounds; r++ {
			in.Wait(id)
		}
	})
	s := in.Snapshot()
	if s.Phases == nil {
		t.Fatal("Options.Phases produced no phase snapshot")
	}
	if s.Phases.ArrivalLevels != arr || s.Phases.WakeupLevels != wake {
		t.Fatalf("snapshot shape (%d,%d), barrier shape (%d,%d)",
			s.Phases.ArrivalLevels, s.Phases.WakeupLevels, arr, wake)
	}
	if got, want := len(s.Phases.Levels), arr+wake; got != want {
		t.Fatalf("%d level cells, want %d", got, want)
	}
	var total uint64
	for _, l := range s.Phases.Levels {
		total += l.Samples
		if l.Samples > 0 && l.SumNs < 0 {
			t.Errorf("%s L%d: negative SumNs %d", l.Phase, l.Level, l.SumNs)
		}
	}
	// Every participant records >= 1 arrival and exactly 1 wake-up per
	// sampled round, so the floor is 2 marks per participant-round.
	if total < uint64(2*p*rounds) {
		t.Errorf("%d total marks over %d participant-rounds, want >= %d", total, p*rounds, 2*p*rounds)
	}
	if l := s.Phases.Level("arrival", 0); l == nil || l.Samples == 0 {
		t.Error("arrival level 0 missing or sampleless")
	}
	if l := s.Phases.Level("arrival", arr); l != nil {
		t.Error("Level() out of range returned a cell")
	}

	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Phases == nil || len(back.Phases.Levels) != arr+wake {
		t.Error("phase series lost in JSON round trip")
	}

	// Merge doubles the samples when shapes match.
	merged := s.Merge(s)
	var mtotal uint64
	for _, l := range merged.Phases.Levels {
		mtotal += l.Samples
	}
	if mtotal != 2*total {
		t.Errorf("merged samples %d, want %d", mtotal, 2*total)
	}
}

// TestInstrumentPhasesUnsupported checks graceful degradation: phases
// requested on a barrier without probes yields a snapshot without a
// phase series, not a panic.
func TestInstrumentPhasesUnsupported(t *testing.T) {
	in := Instrument(barrier.NewCentral(4), Options{SampleEvery: 1, Phases: true})
	barrier.Run(in, func(id int) {
		for r := 0; r < 10; r++ {
			in.Wait(id)
		}
	})
	if s := in.Snapshot(); s.Phases != nil {
		t.Error("central barrier produced a phase snapshot without probes")
	}
}

// TestPhasesSampling checks that probes follow the instrumentation's
// sampling: with SampleEvery 4 only ~1/4 of the rounds mark.
func TestPhasesSampling(t *testing.T) {
	const p, rounds = 4, 400
	in := Instrument(barrier.New(p), Options{SampleEvery: 4, Phases: true})
	barrier.Run(in, func(id int) {
		for r := 0; r < rounds; r++ {
			in.Wait(id)
		}
	})
	s := in.Snapshot()
	if s.Phases == nil {
		t.Fatal("no phase snapshot")
	}
	wake := s.Phases.Level("wakeup", 0)
	if wake == nil {
		t.Fatal("no wakeup level 0")
	}
	// Exactly rounds/4 sampled rounds, each marking one wakeup cell
	// per participant across the wake levels; level 0 alone gets at
	// most p marks per sampled round and at least 1 (the champion).
	maxMarks := uint64(p * rounds / 4)
	if wake.Samples == 0 || wake.Samples > maxMarks {
		t.Errorf("wakeup L0 samples %d with SampleEvery 4, want in (0, %d]", wake.Samples, maxMarks)
	}
}
