package obs

import (
	"fmt"
	"math"

	"armbarrier/internal/stats"
	"armbarrier/tune"
)

// Online detectors for the streaming telemetry layer: each rotation
// hands the fresh WindowStats to detectors.observe, which classifies
// the scheduling regime, watches p99 wait and mean skew for change
// points, scores cross-window straggler persistence, and raises the
// corresponding alerts (alert.go). All state is owned by the stream's
// rotation lock; nothing here runs on the Wait hot path.

// DetectorOptions tunes the online detectors. Zero fields take the
// documented defaults, so StreamOptions{} gets a sensible production
// configuration.
type DetectorOptions struct {
	// ParksPerRound is the park pressure (parks per participant-round)
	// at or above which a window classifies as oversubscribed: parking
	// only happens when spinning lost its core. Default 0.2.
	ParksPerRound float64
	// YieldsPerRound is the yield pressure (scheduler yields per
	// participant-round) at or above which a window classifies as
	// oversubscribed even without parking — the spin-yield policy's
	// signature when waiters outnumber cores. Default 8.
	YieldsPerRound float64
	// RegimeConfirm is how many consecutive windows must agree before
	// the confirmed regime flips (and AlertRegimeShift fires); the
	// hysteresis that keeps a single noisy window from flapping the
	// classification. Default 2.
	RegimeConfirm int

	// ChangeDelta and ChangeLambda tune the Page-Hinkley change-point
	// detectors watching log10(p99 wait) and log10(mean skew): drifts
	// below Delta decades are tolerated, an accumulated drift of
	// Lambda decades alarms. Defaults 0.05 and 0.6 — sustained shifts
	// of roughly 1.5x and up alarm within a few windows, stationary
	// noise of ±12% never does.
	ChangeDelta  float64
	ChangeLambda float64
	// ChangeMinSamples windows must pass before a change-point may
	// alarm (baseline warm-up). Default 3.
	ChangeMinSamples int
	// HolddownWindows suppresses repeat alerts of the same kind (and
	// metric) for this many windows after one fires. Default 5.
	HolddownWindows int

	// StragglerFactor: a participant is slow in a window when its mean
	// arrival offset exceeds this factor times the other participants'
	// median offset. Default 4.
	StragglerFactor float64
	// StragglerMinNs floors the offset for slowness, so microsecond
	// jitter around an idle barrier never names a culprit. Default
	// 10000 (10us).
	StragglerMinNs float64
	// StragglerWindows is the persistence requirement K: the same
	// participant must be slow in K consecutive windows before
	// AlertStraggler names it. Default 3.
	StragglerWindows int
}

// withDefaults fills zero fields.
func (o DetectorOptions) withDefaults() DetectorOptions {
	if o.ParksPerRound <= 0 {
		o.ParksPerRound = 0.2
	}
	if o.YieldsPerRound <= 0 {
		o.YieldsPerRound = 8
	}
	if o.RegimeConfirm <= 0 {
		o.RegimeConfirm = 2
	}
	if o.ChangeDelta <= 0 {
		o.ChangeDelta = 0.05
	}
	if o.ChangeLambda <= 0 {
		o.ChangeLambda = 0.6
	}
	if o.ChangeMinSamples <= 0 {
		o.ChangeMinSamples = 3
	}
	if o.HolddownWindows <= 0 {
		o.HolddownWindows = 5
	}
	if o.StragglerFactor <= 0 {
		o.StragglerFactor = 4
	}
	if o.StragglerMinNs <= 0 {
		o.StragglerMinNs = 10_000
	}
	if o.StragglerWindows <= 0 {
		o.StragglerWindows = 3
	}
	return o
}

// detectors is the per-stream detector state.
type detectors struct {
	opts DetectorOptions

	// Regime state machine: regime is confirmed, pending is the
	// candidate a differing classification proposes, streak counts how
	// many consecutive windows agreed with pending.
	regime  tune.Regime
	pending tune.Regime
	streak  int

	// Change-point detectors on log10 of the metric; holdX is the
	// window index before which re-alerts are suppressed.
	p99      stats.PageHinkley
	skew     stats.PageHinkley
	holdP99  uint64
	holdSkew uint64
	// p99Smooth is an EWMA of the p99 wait, exported for dashboards
	// that want the smoothed trend next to the raw window series.
	p99Smooth *stats.EWMA

	// Straggler persistence: straggler is the current run's culprit,
	// run its consecutive-window count, stragglerActive whether an
	// alert is standing.
	straggler       int
	run             int
	stragglerActive bool

	holdStall uint64
}

// newDetectors builds the detector state.
func newDetectors(opts DetectorOptions) detectors {
	o := opts.withDefaults()
	return detectors{
		opts:      o,
		regime:    tune.RegimeUnknown,
		pending:   tune.RegimeUnknown,
		p99:       stats.PageHinkley{Delta: o.ChangeDelta, Lambda: o.ChangeLambda, MinSamples: o.ChangeMinSamples},
		skew:      stats.PageHinkley{Delta: o.ChangeDelta, Lambda: o.ChangeLambda, MinSamples: o.ChangeMinSamples},
		p99Smooth: stats.NewEWMA(0.3),
		straggler: -1,
	}
}

// classify maps one window's park/yield pressure to a regime. An idle
// window classifies as unknown — it carries no scheduling evidence.
func (d *detectors) classify(w *WindowStats) tune.Regime {
	if w.Rounds == 0 {
		return tune.RegimeUnknown
	}
	if w.ParksPerRound >= d.opts.ParksPerRound || w.YieldsPerRound >= d.opts.YieldsPerRound {
		return tune.RegimeOversubscribed
	}
	return tune.RegimeDedicated
}

// observe folds one freshly rolled window into every detector. It
// fills w.Regime/w.Straggler/w.StragglerSkewNs and returns the alerts
// the window raised. offsets is each participant's mean arrival offset
// this window (valid when w.SkewRounds > 0).
func (d *detectors) observe(w *WindowStats, participants int, offsets []float64) []Alert {
	var fired []Alert

	// 1. Regime classification with confirmation hysteresis.
	if raw := d.classify(w); raw != tune.RegimeUnknown {
		if raw == d.regime {
			d.pending, d.streak = tune.RegimeUnknown, 0
		} else {
			if raw != d.pending {
				d.pending, d.streak = raw, 0
			}
			d.streak++
			if d.streak >= d.opts.RegimeConfirm || d.regime == tune.RegimeUnknown {
				old := d.regime
				d.regime = raw
				d.pending, d.streak = tune.RegimeUnknown, 0
				if old != tune.RegimeUnknown {
					fired = append(fired, Alert{
						Kind:        AlertRegimeShift,
						Window:      w.Index,
						AtNs:        w.EndNs,
						Regime:      raw,
						Participant: -1,
						Metric:      "regime",
						Message:     fmt.Sprintf("regime shifted %s -> %s (parks/round %.2f, yields/round %.1f)", old, raw, w.ParksPerRound, w.YieldsPerRound),
					})
				}
			}
		}
	}
	w.Regime = d.regime

	// 2. Change points on log10(p99 wait) and log10(mean skew). The
	// detector resets after every alarm so the post-change level
	// becomes the new baseline; the holddown suppresses alert storms
	// while the series settles.
	if w.WaitSamples > 0 {
		d.p99Smooth.Update(w.WaitP99Ns)
		if a, ok := d.changePoint(&d.p99, &d.holdP99, w, "wait_p99_ns", w.WaitP99Ns); ok {
			fired = append(fired, a)
		}
	}
	if w.SkewRounds > 0 {
		if a, ok := d.changePoint(&d.skew, &d.holdSkew, w, "skew_mean_ns", w.SkewMeanNs); ok {
			fired = append(fired, a)
		}
	}

	// 3. Cross-window straggler persistence.
	fired = append(fired, d.stragglerScore(w, participants, offsets)...)

	// 4. Watchdog stalls surface as alerts too, with the same holddown.
	if w.WatchdogStalls > 0 && w.Index >= d.holdStall {
		d.holdStall = w.Index + uint64(d.opts.HolddownWindows)
		fired = append(fired, Alert{
			Kind:        AlertWatchdogStall,
			Window:      w.Index,
			AtNs:        w.EndNs,
			Regime:      d.regime,
			Participant: -1,
			Metric:      "watchdog_stalls",
			Value:       float64(w.WatchdogStalls),
			Message:     fmt.Sprintf("%d watchdog stall(s) this window", w.WatchdogStalls),
		})
	}
	return fired
}

// changePoint feeds one value into a Page-Hinkley detector and builds
// the alert when it alarms outside its holddown.
func (d *detectors) changePoint(ph *stats.PageHinkley, hold *uint64, w *WindowStats, metric string, value float64) (Alert, bool) {
	x := math.Log10(math.Max(value, 1))
	if !ph.Update(x) {
		return Alert{}, false
	}
	ph.Reset() // re-baseline on the new level
	if w.Index < *hold {
		return Alert{}, false
	}
	*hold = w.Index + uint64(d.opts.HolddownWindows)
	return Alert{
		Kind:        AlertChangePoint,
		Window:      w.Index,
		AtNs:        w.EndNs,
		Regime:      d.regime,
		Participant: -1,
		Metric:      metric,
		Value:       value,
		Message:     fmt.Sprintf("change point on %s: level now %.0f ns", metric, value),
	}, true
}

// stragglerScore updates the straggler persistence run from this
// window's per-participant arrival offsets: the same participant slow
// (offset > factor x the others' median, above the floor) in K
// consecutive windows raises AlertStraggler naming it; the first
// healthy window afterwards raises AlertStragglerCleared.
func (d *detectors) stragglerScore(w *WindowStats, participants int, offsets []float64) []Alert {
	culprit, offset := -1, 0.0
	if w.SkewRounds > 0 && participants > 1 && len(offsets) == participants {
		worst := 0
		for i, off := range offsets {
			if off > offsets[worst] {
				worst = i
			}
		}
		others := make([]float64, 0, participants-1)
		for i, off := range offsets {
			if i != worst {
				others = append(others, off)
			}
		}
		med := stats.Median(others)
		if off := offsets[worst]; off >= d.opts.StragglerMinNs && off >= d.opts.StragglerFactor*math.Max(med, 1) {
			culprit, offset = worst, off
		}
	}
	w.Straggler, w.StragglerSkewNs = culprit, offset

	var fired []Alert
	switch {
	case culprit < 0 || (d.straggler >= 0 && culprit != d.straggler):
		// Healthy window, or the blame moved: the old run is over.
		if d.stragglerActive {
			fired = append(fired, Alert{
				Kind:        AlertStragglerCleared,
				Window:      w.Index,
				AtNs:        w.EndNs,
				Regime:      d.regime,
				Metric:      "straggler",
				Participant: d.straggler,
				Message:     fmt.Sprintf("participant %d no longer persistently slow", d.straggler),
			})
			d.stragglerActive = false
		}
		d.straggler, d.run = culprit, 0
		if culprit >= 0 {
			d.run = 1
		}
	default:
		d.straggler = culprit
		d.run++
		if d.run >= d.opts.StragglerWindows && !d.stragglerActive {
			d.stragglerActive = true
			fired = append(fired, Alert{
				Kind:        AlertStraggler,
				Window:      w.Index,
				AtNs:        w.EndNs,
				Regime:      d.regime,
				Metric:      "straggler",
				Participant: culprit,
				Value:       offset,
				Message: fmt.Sprintf("participant %d slow in %d consecutive windows (mean arrival offset %.0f ns)",
					culprit, d.run, offset),
			})
		}
	}
	return fired
}
