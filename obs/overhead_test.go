package obs

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"armbarrier/barrier"
)

// episodeLoop runs b.N barrier episodes across P participants — the
// same shape epcc.MeasureReal times.
func episodeLoop(b *testing.B, bar barrier.Barrier) {
	b.ResetTimer()
	barrier.Run(bar, func(id int) {
		for i := 0; i < b.N; i++ {
			bar.Wait(id)
		}
	})
}

// BenchmarkInstrumentOverhead compares the paper's optimized barrier
// bare vs wrapped in obs.Instrument at P=8. The wrapper's budget is
// <10% — cheap enough to leave on under load. Run:
//
//	go test -bench InstrumentOverhead -benchtime 2s ./obs/
func BenchmarkInstrumentOverhead(b *testing.B) {
	const p = 8
	b.Run("bare", func(b *testing.B) {
		episodeLoop(b, barrier.New(p))
	})
	b.Run("instrumented", func(b *testing.B) {
		episodeLoop(b, Instrument(barrier.New(p), Options{}))
	})
	b.Run("phased", func(b *testing.B) {
		episodeLoop(b, Instrument(barrier.New(p), Options{Phases: true}))
	})
	b.Run("traced", func(b *testing.B) {
		episodeLoop(b, armedTracer(p))
	})
	b.Run("streamed", func(b *testing.B) {
		bar, stop := streamedBarrier(p)
		defer stop()
		episodeLoop(b, bar)
	})
}

// armedTracer builds a flight recorder whose trigger is armed but can
// never fire — the steady-state configuration whose overhead must stay
// in the Instrument envelope.
func armedTracer(p int, opts ...barrier.Option) *Tracer {
	return Trace(barrier.New(p, opts...), TraceOptions{
		SkewThresholdNs: 1 << 62,
	})
}

// streamedBarrier builds the always-on production configuration the
// streaming overhead guard judges: Instrument plus a Stream rotating
// live at an aggressive 100ms window. The returned stop halts the
// rotator.
func streamedBarrier(p int, opts ...barrier.Option) (barrier.Barrier, func()) {
	in := Instrument(barrier.New(p, opts...), Options{})
	st := NewStream(in, StreamOptions{Window: 100 * time.Millisecond})
	st.Start()
	return in, st.Stop
}

// overheadVariant is one wrapped configuration the guard compares
// against the bare barrier. cleanup (optional) tears down background
// machinery after the measurement. budget, when nonzero, overrides the
// guard-wide budget for this variant.
type overheadVariant struct {
	name   string
	mk     func() (barrier.Barrier, func())
	budget float64
}

// overheadGuard measures bare vs each variant and enforces the ratio
// budget, best of several attempts. Spin barriers on a shared,
// unpinned host are noisy, so one bad attempt never fails the guard;
// set ARMBARRIER_SKIP_OVERHEAD_GUARD=1 to skip on hopelessly loaded
// machines.
func overheadGuard(t *testing.T, p int, bopts []barrier.Option, budget float64, variants []overheadVariant) {
	t.Helper()
	if os.Getenv("ARMBARRIER_SKIP_OVERHEAD_GUARD") != "" {
		t.Skip("ARMBARRIER_SKIP_OVERHEAD_GUARD set")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		// The race detector multiplies the cost of the wrapper's atomics
		// far more than the barrier's spin loop, so the wall-clock budget
		// is meaningless in -race builds; run plainly to judge it.
		t.Skip("race detector distorts the overhead ratio")
	}
	const attempts = 4
	best := map[string]float64{}
	budgetOf := func(v overheadVariant) float64 {
		if v.budget > 0 {
			return v.budget
		}
		return budget
	}
	for a := 0; a < attempts; a++ {
		bare := testing.Benchmark(func(b *testing.B) {
			episodeLoop(b, barrier.New(p, bopts...))
		})
		ok := true
		for _, v := range variants {
			if r, judged := best[v.name]; judged && r < budgetOf(v) {
				continue // already within budget
			}
			res := testing.Benchmark(func(b *testing.B) {
				bar, cleanup := v.mk()
				if cleanup != nil {
					defer cleanup()
				}
				episodeLoop(b, bar)
			})
			ratio := float64(res.NsPerOp()) / float64(bare.NsPerOp())
			t.Logf("attempt %d: bare %d ns/episode, %s %d ns/episode, ratio %.3f",
				a, bare.NsPerOp(), v.name, res.NsPerOp(), ratio)
			if prev, judged := best[v.name]; !judged || ratio < prev {
				best[v.name] = ratio
			}
			if best[v.name] >= budgetOf(v) {
				ok = false
			}
		}
		if ok {
			return
		}
	}
	for _, v := range variants {
		if r, bud := best[v.name], budgetOf(v); r >= bud {
			t.Errorf("%s overhead %.1f%% exceeds the %.0f%% budget (best of %d attempts)",
				v.name, (r-1)*100, (bud-1)*100, attempts)
		}
	}
}

// TestInstrumentOverheadGuard enforces the <10% budget in the regular
// test run for every observer configuration a production service would
// leave on: the plain instrumentation wrapper, the flight recorder
// with its trigger armed but not firing, and the streaming layer
// rotating live at a 100ms window. On hosts with at least P cores this
// exercises the dedicated regime; see
// TestStreamOverheadGuardOversubscribed for the other one.
func TestInstrumentOverheadGuard(t *testing.T) {
	const p = 8
	// Oversubscribed, a spin-yield barrier measures the scheduler, not
	// the wrapper: P spinning goroutines on fewer cores make both the
	// bare and wrapped timings preemption lotteries. Under SpinParkWait
	// the waiters get off the cores, so the guard holds in both regimes
	// — the parking policy is exactly what makes the overhead budget
	// enforceable on oversubscribed hosts. Parking also makes the bare
	// episode several times cheaper, so the wrapper's fixed per-round
	// cost is a larger fraction of it; the budget widens to 15% there
	// while the absolute overhead stays the same.
	budget := 1.10
	// Phase probes add a fixed per-sampled-round cost on top of the
	// wrapper's: one clock read and a handful of owner-only atomics per
	// (phase, level) mark. On dedicated cores that disappears into the
	// spin time; against parked oversubscribed episodes — several times
	// cheaper — the same fixed cost is a visibly larger fraction, so the
	// phased budget widens further than the wrapper's there.
	phasedBudget := 1.10
	var bopts []barrier.Option
	if runtime.NumCPU() < p {
		bopts = append(bopts, barrier.WithWaitPolicy(barrier.SpinParkWait()))
		budget = 1.15
		phasedBudget = 1.25
	}
	overheadGuard(t, p, bopts, budget, []overheadVariant{
		{name: "instrumented", mk: func() (barrier.Barrier, func()) {
			return Instrument(barrier.New(p, bopts...), Options{}), nil
		}},
		// Phase probes at the default sampling rate: the probe sites
		// stay disarmed on unsampled rounds (one plain load each), so
		// the per-level telemetry must fit in the envelope above.
		{name: "phased", budget: phasedBudget, mk: func() (barrier.Barrier, func()) {
			return Instrument(barrier.New(p, bopts...), Options{Phases: true}), nil
		}},
		{name: "traced", mk: func() (barrier.Barrier, func()) { return armedTracer(p, bopts...), nil }},
		{name: "streamed", mk: func() (barrier.Barrier, func()) { return streamedBarrier(p, bopts...) }},
	})
}

// TestStreamOverheadGuardOversubscribed pins the streaming layer's
// budget in the oversubscribed regime regardless of the host: more
// participants than cores, parking policy (the regime's winner per the
// paper), stream rotating at 100ms. A rotation is one snapshot of
// counters the participants already maintain, so oversubscription must
// not widen the gap — the rotator goroutine competes for cores like
// any other process would.
func TestStreamOverheadGuardOversubscribed(t *testing.T) {
	p := 2 * runtime.GOMAXPROCS(0)
	if p < 8 {
		p = 8
	}
	bopts := []barrier.Option{barrier.WithWaitPolicy(barrier.SpinParkWait())}
	overheadGuard(t, p, bopts, 1.15, []overheadVariant{
		{name: "streamed", mk: func() (barrier.Barrier, func()) { return streamedBarrier(p, bopts...) }},
	})
}

// Example of the telemetry a snapshot renders; also keeps the exported
// quantile helpers exercised without a live scrape.
func Example() {
	in := Instrument(barrier.New(2), Options{})
	barrier.Run(in, func(id int) {
		for r := 0; r < 100; r++ {
			in.Wait(id)
		}
	})
	s := in.Snapshot()
	fmt.Println(s.Barrier, s.Participants, s.TotalRounds())
	// Output: optimized 2 100
}
