package obs

import (
	"fmt"
	"os"
	"testing"

	"armbarrier/barrier"
)

// episodeLoop runs b.N barrier episodes across P participants — the
// same shape epcc.MeasureReal times.
func episodeLoop(b *testing.B, bar barrier.Barrier) {
	b.ResetTimer()
	barrier.Run(bar, func(id int) {
		for i := 0; i < b.N; i++ {
			bar.Wait(id)
		}
	})
}

// BenchmarkInstrumentOverhead compares the paper's optimized barrier
// bare vs wrapped in obs.Instrument at P=8. The wrapper's budget is
// <10% — cheap enough to leave on under load. Run:
//
//	go test -bench InstrumentOverhead -benchtime 2s ./obs/
func BenchmarkInstrumentOverhead(b *testing.B) {
	const p = 8
	b.Run("bare", func(b *testing.B) {
		episodeLoop(b, barrier.New(p))
	})
	b.Run("instrumented", func(b *testing.B) {
		episodeLoop(b, Instrument(barrier.New(p), Options{}))
	})
}

// TestInstrumentOverheadGuard enforces the <10% budget in the regular
// test run. Spin barriers on a shared, unpinned host are noisy, so the
// guard takes the best of several attempts before judging; set
// ARMBARRIER_SKIP_OVERHEAD_GUARD=1 to skip on hopelessly loaded
// machines.
func TestInstrumentOverheadGuard(t *testing.T) {
	if os.Getenv("ARMBARRIER_SKIP_OVERHEAD_GUARD") != "" {
		t.Skip("ARMBARRIER_SKIP_OVERHEAD_GUARD set")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	const p, attempts = 8, 4
	best := 0.0
	for a := 0; a < attempts; a++ {
		bare := testing.Benchmark(func(b *testing.B) {
			episodeLoop(b, barrier.New(p))
		})
		ins := testing.Benchmark(func(b *testing.B) {
			episodeLoop(b, Instrument(barrier.New(p), Options{}))
		})
		ratio := float64(ins.NsPerOp()) / float64(bare.NsPerOp())
		t.Logf("attempt %d: bare %d ns/episode, instrumented %d ns/episode, ratio %.3f",
			a, bare.NsPerOp(), ins.NsPerOp(), ratio)
		if a == 0 || ratio < best {
			best = ratio
		}
		if best < 1.10 {
			return
		}
	}
	t.Errorf("instrument overhead %.1f%% exceeds the 10%% budget (best of %d attempts)",
		(best-1)*100, attempts)
}

// Example of the telemetry a snapshot renders; also keeps the exported
// quantile helpers exercised without a live scrape.
func Example() {
	in := Instrument(barrier.New(2), Options{})
	barrier.Run(in, func(id int) {
		for r := 0; r < 100; r++ {
			in.Wait(id)
		}
	})
	s := in.Snapshot()
	fmt.Println(s.Barrier, s.Participants, s.TotalRounds())
	// Output: optimized 2 100
}
