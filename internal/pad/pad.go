// Package pad centralizes the cacheline-padding discipline used for
// every piece of per-participant and per-group hot state in this
// repository. The repeated idiom — a small payload followed by a
// trailing byte array sized so neighbouring slots in a slice never
// share a cacheline — used to be copied into each slot type (park
// slots, deadline slots, probe slots, watchdog slots, telemetry
// shards); this package is the single place the constant and the two
// padding shapes live.
//
// Two shapes are provided:
//
//   - Exact-multiple padding, for slot types that must be a precise
//     number of lines (layout tests assert the sizes). Write the
//     trailing pad with the Trailing formula:
//
//     type slot struct {
//     payload
//     _ [pad.CacheLine - unsafe.Sizeof(payload{})%pad.CacheLine]byte
//     }
//
//     unsafe.Sizeof of a concrete type is a compile-time constant, so
//     the array length is checked at build time and the slot cannot
//     silently drift off its line when a field is added.
//
//   - Padded[T], the generic slot for new code: the payload plus one
//     full trailing line. The total size is not an exact line multiple,
//     but consecutive elements of a []Padded[T] are always at least a
//     full line apart, so no two elements' payloads ever share a line —
//     the property the padding exists to buy — without per-type
//     formulas.
package pad

// CacheLine is the padding granularity: 128 bytes covers the 64-byte
// lines of the studied ARMv8 machines plus adjacent-line prefetching,
// and matches Kunpeng920's 128-byte L3 granularity. barrier.
// CacheLineSize re-exports it for external callers.
const CacheLine = 128

// Padded places V on its own cacheline span: the trailing pad is a
// full line, so in a []Padded[T] the gap between consecutive payloads
// is at least CacheLine bytes and no two payloads can fall on one
// line, wherever the slice base lands.
type Padded[T any] struct {
	V T
	_ [CacheLine]byte
}
