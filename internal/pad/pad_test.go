package pad

import (
	"sync/atomic"
	"testing"
	"unsafe"
)

// The whole point of Padded is that neighbouring elements of a slice
// can never land on one line, for any payload size.
func TestPaddedElementsDoNotShareLines(t *testing.T) {
	small := make([]Padded[atomic.Uint32], 4)
	for i := 1; i < len(small); i++ {
		a := uintptr(unsafe.Pointer(&small[i-1].V))
		b := uintptr(unsafe.Pointer(&small[i].V))
		if b-a < CacheLine {
			t.Fatalf("uint32 payloads %d bytes apart, want >= %d", b-a, CacheLine)
		}
	}
	type wide struct{ a, b, c atomic.Uint64 }
	big := make([]Padded[wide], 4)
	for i := 1; i < len(big); i++ {
		a := uintptr(unsafe.Pointer(&big[i-1].V))
		b := uintptr(unsafe.Pointer(&big[i].V))
		if b-a < CacheLine {
			t.Fatalf("wide payloads %d bytes apart, want >= %d", b-a, CacheLine)
		}
	}
}

func TestTrailingFormulaYieldsExactMultiple(t *testing.T) {
	type payload struct {
		a uint64
		b uint32
	}
	type slot struct {
		payload
		_ [CacheLine - unsafe.Sizeof(payload{})%CacheLine]byte
	}
	if got := unsafe.Sizeof(slot{}); got%CacheLine != 0 {
		t.Fatalf("slot is %d bytes, want a multiple of %d", got, CacheLine)
	}
}
