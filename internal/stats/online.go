package stats

import "math"

// Online (streaming) statistics: the windowed telemetry layer
// (obs/stream) folds one value per rotation into these detectors, so
// every Update must be O(1) with no allocation — the detectors run
// inside the rotation path of an always-on production observer.

// EWMA is an exponentially weighted moving average: each Update blends
// the new observation into the running value with weight Alpha. The
// zero value is usable after SetAlpha; NewEWMA is the usual way in.
type EWMA struct {
	alpha float64
	value float64
	n     uint64
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1]:
// higher alpha tracks faster, lower alpha smooths harder. It panics on
// an alpha outside (0, 1].
func NewEWMA(alpha float64) *EWMA {
	e := &EWMA{}
	e.SetAlpha(alpha)
	return e
}

// SetAlpha sets the smoothing factor, keeping the current value. It
// panics on an alpha outside (0, 1].
func (e *EWMA) SetAlpha(alpha float64) {
	if !(alpha > 0 && alpha <= 1) {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	e.alpha = alpha
}

// Update folds x into the average and returns the new value. The first
// observation seeds the average directly (no bias toward zero).
func (e *EWMA) Update(x float64) float64 {
	if e.n == 0 {
		e.value = x
	} else {
		e.value += e.alpha * (x - e.value)
	}
	e.n++
	return e.value
}

// Value returns the current average (0 before any Update).
func (e *EWMA) Value() float64 { return e.value }

// Count returns how many observations have been folded in.
func (e *EWMA) Count() uint64 { return e.n }

// Reset forgets all observations, keeping alpha.
func (e *EWMA) Reset() {
	e.value = 0
	e.n = 0
}

// PageHinkley is a two-sided Page-Hinkley change-point detector: it
// accumulates deviations of each observation from the running mean and
// alarms when the accumulated drift since its best point exceeds
// Lambda. Deviations smaller than Delta are tolerated (they decay the
// accumulator instead of growing it), so stationary noise does not
// alarm while a sustained level shift does — the classic sequential
// test for "the distribution feeding me changed", which is exactly the
// regime-change question the windowed telemetry asks of p99 wait and
// arrival skew.
//
// The detector is cheap (a handful of float ops per Update) and
// scale-sensitive: Delta and Lambda are in the units of the input, so
// callers watching quantities that span decades should feed a
// normalized value (obs/stream feeds log10 of nanoseconds).
type PageHinkley struct {
	// Delta is the per-observation deviation tolerance: drifts smaller
	// than this never accumulate.
	Delta float64
	// Lambda is the alarm threshold on the accumulated drift.
	Lambda float64
	// MinSamples observations must arrive before the detector may alarm
	// (the running mean needs a baseline). Zero means 2.
	MinSamples int

	n      int
	mean   float64
	incSum float64 // accumulated positive drift (upward changes)
	incMin float64
	decSum float64 // accumulated negative drift (downward changes)
	decMax float64
}

// Update folds x in and reports whether a change-point alarm fired on
// this observation. After an alarm the caller decides whether to Reset
// (re-baseline on the new level) or keep accumulating.
func (ph *PageHinkley) Update(x float64) bool {
	ph.n++
	// Running mean over everything since the last Reset.
	ph.mean += (x - ph.mean) / float64(ph.n)
	ph.incSum += x - ph.mean - ph.Delta
	if ph.incSum < ph.incMin {
		ph.incMin = ph.incSum
	}
	ph.decSum += x - ph.mean + ph.Delta
	if ph.decSum > ph.decMax {
		ph.decMax = ph.decSum
	}
	min := ph.MinSamples
	if min <= 0 {
		min = 2
	}
	if ph.n < min {
		return false
	}
	return ph.incSum-ph.incMin > ph.Lambda || ph.decMax-ph.decSum > ph.Lambda
}

// Drift returns the larger of the upward and downward accumulated
// drifts — how close the detector is to alarming, in Lambda units once
// divided by Lambda.
func (ph *PageHinkley) Drift() float64 {
	return math.Max(ph.incSum-ph.incMin, ph.decMax-ph.decSum)
}

// Reset re-baselines the detector, keeping its tuning parameters. Call
// it after handling an alarm so the new level becomes the null
// hypothesis instead of re-alarming forever.
func (ph *PageHinkley) Reset() {
	ph.n = 0
	ph.mean = 0
	ph.incSum, ph.incMin = 0, 0
	ph.decSum, ph.decMax = 0, 0
}
