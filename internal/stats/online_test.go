package stats

import (
	"math"
	"testing"
)

func TestEWMASeedsOnFirstUpdate(t *testing.T) {
	e := NewEWMA(0.1)
	if got := e.Update(100); got != 100 {
		t.Fatalf("first update = %g, want 100 (no zero bias)", got)
	}
	if e.Count() != 1 {
		t.Fatalf("count = %d", e.Count())
	}
}

func TestEWMATracksLevelShift(t *testing.T) {
	e := NewEWMA(0.5)
	for i := 0; i < 20; i++ {
		e.Update(10)
	}
	if v := e.Value(); v != 10 {
		t.Fatalf("stationary value = %g", v)
	}
	for i := 0; i < 20; i++ {
		e.Update(50)
	}
	if v := e.Value(); math.Abs(v-50) > 1e-3 {
		t.Errorf("post-shift value = %g, want ~50", v)
	}
	e.Reset()
	if e.Value() != 0 || e.Count() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %g did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

// stationary noise around a level must not alarm; a sustained level
// shift must alarm exactly while it is fresh.
func TestPageHinkleyDetectsUpwardShift(t *testing.T) {
	ph := PageHinkley{Delta: 0.05, Lambda: 0.6, MinSamples: 3}
	// Deterministic "noise": small alternating wiggle around 1.0.
	for i := 0; i < 50; i++ {
		x := 1.0
		if i%2 == 0 {
			x = 1.04
		}
		if ph.Update(x) {
			t.Fatalf("false alarm on stationary input at %d", i)
		}
	}
	// Sustained shift to 2.0 (e.g. log10 of a 10x p99 regression).
	fired := -1
	for i := 0; i < 10; i++ {
		if ph.Update(2.0) {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("no alarm on a sustained 1.0 -> 2.0 shift")
	}
	if fired > 4 {
		t.Errorf("alarm took %d post-shift samples, want <= 4", fired+1)
	}
	// Reset re-baselines: the new level alone must not re-alarm.
	ph.Reset()
	for i := 0; i < 50; i++ {
		if ph.Update(2.0) {
			t.Fatalf("re-alarm on the new stationary level at %d", i)
		}
	}
}

func TestPageHinkleyDetectsDownwardShift(t *testing.T) {
	ph := PageHinkley{Delta: 0.05, Lambda: 0.6, MinSamples: 3}
	for i := 0; i < 30; i++ {
		if ph.Update(3.0) {
			t.Fatalf("false alarm at %d", i)
		}
	}
	fired := false
	for i := 0; i < 10; i++ {
		if ph.Update(1.0) {
			fired = true
			break
		}
	}
	if !fired {
		t.Error("no alarm on a sustained downward shift")
	}
}

func TestPageHinkleyMinSamples(t *testing.T) {
	ph := PageHinkley{Delta: 0, Lambda: 0.1, MinSamples: 5}
	// Wild early values may not alarm before MinSamples observations.
	for i, x := range []float64{0, 100, 0, 100} {
		if ph.Update(x) {
			t.Fatalf("alarm at sample %d, before MinSamples", i+1)
		}
	}
	if !ph.Update(100) {
		t.Error("no alarm once MinSamples reached on a drifting input")
	}
	if ph.Drift() <= 0.1 {
		t.Errorf("Drift() = %g, want > Lambda after alarm", ph.Drift())
	}
}
