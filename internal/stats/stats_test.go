package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %g, want 0", got)
	}
}

func TestMeanSimple(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); !almostEqual(got, 2.5) {
		t.Fatalf("Mean = %g, want 2.5", got)
	}
}

func TestMeanSingle(t *testing.T) {
	if got := Mean([]float64{42}); !almostEqual(got, 42) {
		t.Fatalf("Mean = %g, want 42", got)
	}
}

func TestGeoMeanSimple(t *testing.T) {
	g, err := GeoMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(g, 4) {
		t.Fatalf("GeoMean = %g, want 4", g)
	}
}

func TestGeoMeanPaperTable4(t *testing.T) {
	// Table IV: GCC row 8x, 23x, 11x -> geomean reported as 12.6x.
	g, err := GeoMean([]float64{8, 23, 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-12.6) > 0.2 {
		t.Fatalf("GeoMean(8,23,11) = %g, want about 12.6 as in Table IV", g)
	}
}

func TestGeoMeanRejectsNonPositive(t *testing.T) {
	if _, err := GeoMean([]float64{1, 0, 2}); err == nil {
		t.Fatal("GeoMean accepted a zero value")
	}
	if _, err := GeoMean([]float64{1, -3}); err == nil {
		t.Fatal("GeoMean accepted a negative value")
	}
}

func TestGeoMeanEmpty(t *testing.T) {
	g, err := GeoMean(nil)
	if err != nil || g != 0 {
		t.Fatalf("GeoMean(nil) = %g, %v; want 0, nil", g, err)
	}
}

func TestMustGeoMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGeoMean did not panic on non-positive input")
		}
	}()
	MustGeoMean([]float64{-1})
}

func TestStdDev(t *testing.T) {
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	// Sample stddev of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if !almostEqual(got, want) {
		t.Fatalf("StdDev = %g, want %g", got, want)
	}
}

func TestStdDevDegenerate(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Fatalf("StdDev of single element = %g, want 0", got)
	}
	if got := StdDev(nil); got != 0 {
		t.Fatalf("StdDev(nil) = %g, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Fatalf("Min = %g, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Fatalf("Max = %g, want 7", got)
	}
	if !math.IsInf(Min(nil), 1) {
		t.Fatal("Min(nil) should be +Inf")
	}
	if !math.IsInf(Max(nil), -1) {
		t.Fatal("Max(nil) should be -Inf")
	}
}

func TestMedianOdd(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Fatalf("Median = %g, want 5", got)
	}
}

func TestMedianEven(t *testing.T) {
	if got := Median([]float64{4, 1, 3, 2}); !almostEqual(got, 2.5) {
		t.Fatalf("Median = %g, want 2.5", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated its input: %v", xs)
	}
}

func TestSpeedup(t *testing.T) {
	s, err := Speedup(20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s, 5) {
		t.Fatalf("Speedup = %g, want 5", s)
	}
	if _, err := Speedup(10, 0); err == nil {
		t.Fatal("Speedup accepted zero denominator")
	}
}

func TestRelStdDev(t *testing.T) {
	if got := RelStdDev([]float64{10, 10, 10}); got != 0 {
		t.Fatalf("RelStdDev of constants = %g, want 0", got)
	}
	if got := RelStdDev(nil); got != 0 {
		t.Fatalf("RelStdDev(nil) = %g, want 0", got)
	}
}

func TestArgMin(t *testing.T) {
	if got := ArgMin([]float64{5, 2, 8, 2}); got != 1 {
		t.Fatalf("ArgMin = %d, want 1 (first of ties)", got)
	}
	if got := ArgMin(nil); got != -1 {
		t.Fatalf("ArgMin(nil) = %d, want -1", got)
	}
}

// Property: mean is bounded by min and max.
func TestQuickMeanBounded(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Keep magnitudes moderate so the sum cannot overflow.
			xs = append(xs, math.Mod(x, 1e9))
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: geomean of positive values is bounded by min and max, and is
// no larger than the arithmetic mean (AM-GM).
func TestQuickGeoMeanAMGM(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Map into a positive, moderate range.
			xs = append(xs, 1+math.Abs(math.Mod(x, 1000)))
		}
		if len(xs) == 0 {
			return true
		}
		g := MustGeoMean(xs)
		return g >= Min(xs)-1e-6 && g <= Max(xs)+1e-6 && g <= Mean(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: stddev is invariant under translation.
func TestQuickStdDevShiftInvariant(t *testing.T) {
	f := func(raw []float64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			return true
		}
		shift = math.Mod(shift, 1e6)
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e6))
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		a, b := StdDev(xs), StdDev(shifted)
		return math.Abs(a-b) < 1e-6*(1+a+b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileEmpty(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("Quantile(nil) = %g, want 0", got)
	}
}

func TestQuantileSingle(t *testing.T) {
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if got := Quantile([]float64{7}, q); got != 7 {
			t.Fatalf("Quantile([7], %g) = %g, want 7", q, got)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	// pos = 0.25*3 = 0.75 -> between 10 and 20 at 0.75.
	if got := Quantile(xs, 0.25); !almostEqual(got, 17.5) {
		t.Fatalf("Quantile(0.25) = %g, want 17.5", got)
	}
	if got := Quantile(xs, 0.5); !almostEqual(got, 25) {
		t.Fatalf("Quantile(0.5) = %g, want 25", got)
	}
}

func TestQuantileExtremesAndClamping(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("Quantile(0) = %g, want 1", got)
	}
	if got := Quantile(xs, 1); got != 3 {
		t.Fatalf("Quantile(1) = %g, want 3", got)
	}
	if got := Quantile(xs, -0.5); got != 1 {
		t.Fatalf("Quantile(-0.5) = %g, want 1 (clamped)", got)
	}
	if got := Quantile(xs, 2); got != 3 {
		t.Fatalf("Quantile(2) = %g, want 3 (clamped)", got)
	}
}

func TestQuantileMatchesMedian(t *testing.T) {
	if err := quick.Check(func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
		}
		return almostEqual(Quantile(xs, 0.5), Median(xs))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.9)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}
