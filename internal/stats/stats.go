// Package stats provides the small set of summary statistics used by the
// barrier experiments: mean, geometric mean, standard deviation, extrema,
// and speedup helpers. All functions operate on float64 slices and are
// deliberately allocation-free.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// it returns an error otherwise. It returns 0 for an empty slice.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	logSum := 0.0
	for i, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: GeoMean requires positive values, got %g at index %d", x, i)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// MustGeoMean is GeoMean for inputs known to be positive; it panics on a
// non-positive value. Use it for constant experiment post-processing.
func MustGeoMean(xs []float64) float64 {
	g, err := GeoMean(xs)
	if err != nil {
		panic(err)
	}
	return g
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs.
// It returns 0 when len(xs) < 2.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the minimum of xs. It returns +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It returns -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs, interpolating between the two middle
// elements for even lengths. It returns 0 for an empty slice and does not
// modify its argument.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile of xs (q in [0,1], clamped) using
// linear interpolation between closest ranks — the "linear" method of R
// and NumPy, which makes Quantile(xs, 0.5) the conventional median. It
// returns 0 for an empty slice and does not modify its argument.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Speedup returns baseline/optimized, the conventional "x faster" ratio.
// It returns an error if optimized is not positive.
func Speedup(baseline, optimized float64) (float64, error) {
	if optimized <= 0 {
		return 0, fmt.Errorf("stats: Speedup requires a positive optimized time, got %g", optimized)
	}
	return baseline / optimized, nil
}

// RelStdDev returns the coefficient of variation (stddev/mean) of xs,
// used to check the paper's "noise across runs below 2%" observation on
// the deterministic simulator. It returns 0 when the mean is 0.
func RelStdDev(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// ArgMin returns the index of the smallest element, breaking ties toward
// the lower index. It returns -1 for an empty slice.
func ArgMin(xs []float64) int {
	best := -1
	for i, x := range xs {
		if best == -1 || x < xs[best] {
			best = i
		}
	}
	return best
}
