// Package table renders experiment results as aligned ASCII tables and
// CSV, the two output formats of the benchmark harness. A Table is a
// title, a header row and string cells; numeric helpers format float64
// series consistently across experiments.
package table

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a rectangular result set. Rows may be ragged only up to the
// header width; Render pads short rows with empty cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are free-form lines printed after the table body.
	Notes []string
}

// New returns an empty table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Cell formats a float64 with a precision suited to latency values:
// two decimals below 100, one decimal below 10000, integers above.
func Cell(v float64) string {
	switch {
	case v != v: // NaN
		return "-"
	case v < 0:
		return fmt.Sprintf("%.2f", v)
	case v < 100:
		return fmt.Sprintf("%.2f", v)
	case v < 10000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// CellX formats a speedup factor, e.g. "12.6x".
func CellX(v float64) string {
	return fmt.Sprintf("%.1fx", v)
}

// CellInt formats an integer cell.
func CellInt(v int) string {
	return strconv.Itoa(v)
}

// width returns the number of columns the rendered table needs.
func (t *Table) width() int {
	w := len(t.Columns)
	for _, r := range t.Rows {
		if len(r) > w {
			w = len(r)
		}
	}
	return w
}

// Render returns the table as an aligned ASCII block terminated by a
// newline. Columns are left-aligned for the first column and
// right-aligned otherwise (the convention for numeric result tables).
func (t *Table) Render() string {
	w := t.width()
	widths := make([]int, w)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Columns)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < w; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Columns) > 0 {
		writeRow(t.Columns)
		total := 0
		for _, cw := range widths {
			total += cw
		}
		total += 2 * (w - 1)
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV returns the table in RFC-4180-ish CSV form (header then rows).
// Cells containing commas, quotes or newlines are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Columns) > 0 {
		writeRow(t.Columns)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
