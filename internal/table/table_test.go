package table

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("bb", "22")
	out := tb.Render()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title in output:\n%s", out)
	}
	if !strings.Contains(out, "name") || !strings.Contains(out, "value") {
		t.Fatalf("missing headers:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestRenderAlignsColumns(t *testing.T) {
	tb := New("", "k", "v")
	tb.AddRow("longname", "7")
	tb.AddRow("x", "123")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// All data lines must have equal rendered width.
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("rows not aligned:\n%q\n%q", lines[2], lines[3])
	}
}

func TestRenderRaggedRowPadded(t *testing.T) {
	tb := New("t", "a", "b", "c")
	tb.AddRow("only")
	out := tb.Render()
	if !strings.Contains(out, "only") {
		t.Fatalf("short row dropped:\n%s", out)
	}
}

func TestRenderNotes(t *testing.T) {
	tb := New("t", "a")
	tb.AddNote("alpha=%g", 0.5)
	out := tb.Render()
	if !strings.Contains(out, "# alpha=0.5") {
		t.Fatalf("missing note:\n%s", out)
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := New("t", "a", "b")
	tb.AddRow(`say "hi"`, "x,y")
	got := tb.CSV()
	want := "a,b\n\"say \"\"hi\"\"\",\"x,y\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestCSVPlain(t *testing.T) {
	tb := New("t", "h1", "h2")
	tb.AddRow("1", "2")
	if got := tb.CSV(); got != "h1,h2\n1,2\n" {
		t.Fatalf("CSV = %q", got)
	}
}

func TestCellFormats(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{1.234, "1.23"},
		{99.999, "100.00"},
		{456.78, "456.8"},
		{123456, "123456"},
		{math.NaN(), "-"},
	}
	for _, c := range cases {
		if got := Cell(c.v); got != c.want {
			t.Errorf("Cell(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCellX(t *testing.T) {
	if got := CellX(12.64); got != "12.6x" {
		t.Fatalf("CellX = %q", got)
	}
}

func TestCellInt(t *testing.T) {
	if got := CellInt(64); got != "64" {
		t.Fatalf("CellInt = %q", got)
	}
}

func TestEmptyTable(t *testing.T) {
	tb := &Table{}
	if out := tb.Render(); out != "" {
		t.Fatalf("empty table rendered %q", out)
	}
	if out := tb.CSV(); out != "" {
		t.Fatalf("empty table CSV %q", out)
	}
}
