// Package plot renders series as ASCII line charts for the terminal,
// so cmd/barriersim can draw the paper's figures (overhead vs thread
// count) and not just print their tables.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"armbarrier/internal/table"
)

// Series is one line on a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Options configures Chart rendering.
type Options struct {
	// Width and Height of the plotting area in characters
	// (default 64x16).
	Width, Height int
	// LogY plots log10(y); barrier overheads span decades.
	LogY bool
	// YLabel annotates the vertical axis.
	YLabel string
	// XLabel annotates the horizontal axis.
	XLabel string
}

// markers distinguish series within one chart.
var markers = []byte{'o', 'x', '*', '+', '#', '@', '%', '&'}

// Chart renders the series into an ASCII chart. Series with mismatched
// X/Y lengths or no points are reported as an error.
func Chart(title string, series []Series, opts Options) (string, error) {
	if len(series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}
	w, h := opts.Width, opts.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	yval := func(y float64) (float64, error) {
		if !opts.LogY {
			return y, nil
		}
		if y <= 0 {
			return 0, fmt.Errorf("plot: log scale requires positive values, got %g", y)
		}
		return math.Log10(y), nil
	}
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return "", fmt.Errorf("plot: series %q is empty", s.Name)
		}
		for i := range s.X {
			y, err := yval(s.Y[i])
			if err != nil {
				return "", err
			}
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			y, _ := yval(s.Y[i])
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(w-1)))
			row := h - 1 - int(math.Round((y-minY)/(maxY-minY)*float64(h-1)))
			if grid[row][col] == ' ' || grid[row][col] == mark {
				grid[row][col] = mark
			} else {
				grid[row][col] = '?' // collision between series
			}
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if opts.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", opts.YLabel)
	}
	yTop, yBot := maxY, minY
	if opts.LogY {
		yTop, yBot = math.Pow(10, maxY), math.Pow(10, minY)
	}
	for r := 0; r < h; r++ {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%8s", trim(yTop))
		}
		if r == h-1 {
			label = fmt.Sprintf("%8s", trim(yBot))
		}
		fmt.Fprintf(&b, "%s |%s\n", label, grid[r])
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", 8), w-len(trim(maxX)), trim(minX), trim(maxX))
	if opts.XLabel != "" {
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", 8), opts.XLabel)
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "legend: %s\n", strings.Join(legend, "  "))
	return b.String(), nil
}

func trim(v float64) string {
	s := strconv.FormatFloat(v, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// FromSweepTable converts a sweep table (first column = series name,
// remaining columns "NT" with numeric cells) into chart series.
func FromSweepTable(tb *table.Table) ([]Series, error) {
	if len(tb.Columns) < 2 {
		return nil, fmt.Errorf("plot: table %q has no data columns", tb.Title)
	}
	xs := make([]float64, 0, len(tb.Columns)-1)
	for _, c := range tb.Columns[1:] {
		var p int
		if _, err := fmt.Sscanf(c, "%dT", &p); err != nil {
			return nil, fmt.Errorf("plot: column %q of %q is not a thread count", c, tb.Title)
		}
		xs = append(xs, float64(p))
	}
	var out []Series
	for _, row := range tb.Rows {
		if len(row) != len(tb.Columns) {
			return nil, fmt.Errorf("plot: ragged row in %q", tb.Title)
		}
		s := Series{Name: row[0], X: xs}
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("plot: cell %q in %q: %v", cell, tb.Title, err)
			}
			s.Y = append(s.Y, v)
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("plot: table %q has no rows", tb.Title)
	}
	return out, nil
}

// SweepChart renders a sweep table directly as a chart, or returns an
// error if the table is not a sweep.
func SweepChart(tb *table.Table, logY bool) (string, error) {
	series, err := FromSweepTable(tb)
	if err != nil {
		return "", err
	}
	// Log charts cannot show exact zeros (1-thread barriers cost ~0);
	// clamp to a small positive floor instead of failing.
	if logY {
		for _, s := range series {
			for i, y := range s.Y {
				if y <= 0 {
					s.Y[i] = 0.001
				}
			}
		}
	}
	return Chart(tb.Title, series, Options{LogY: logY, YLabel: "us/barrier", XLabel: "threads"})
}

// SortSeriesByName orders series alphabetically, for deterministic
// legends when input order varies.
func SortSeriesByName(series []Series) {
	sort.Slice(series, func(a, b int) bool { return series[a].Name < series[b].Name })
}

// sparkRamp maps a normalized value to a glyph, lowest to highest.
// ASCII only, so the timeline endpoint renders in any terminal or
// curl | less without locale surprises.
const sparkRamp = " .:-=+*#%@"

// Sparkline renders xs as one line of density glyphs, min-max
// normalized: the smallest value maps to the first ramp glyph, the
// largest to the last. A constant series renders as mid-ramp glyphs,
// an empty one as "". NaN values render as '?'.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	out := make([]byte, len(xs))
	for i, x := range xs {
		switch {
		case math.IsNaN(x):
			out[i] = '?'
		case hi == lo || math.IsInf(lo, 1):
			out[i] = sparkRamp[len(sparkRamp)/2]
		default:
			idx := int(math.Round((x - lo) / (hi - lo) * float64(len(sparkRamp)-1)))
			out[i] = sparkRamp[idx]
		}
	}
	return string(out)
}
