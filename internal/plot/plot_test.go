package plot

import (
	"math"
	"strings"
	"testing"

	"armbarrier/internal/table"
)

func TestChartBasic(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{1, 2, 4, 8}, Y: []float64{1, 2, 4, 8}},
		{Name: "b", X: []float64{1, 2, 4, 8}, Y: []float64{8, 4, 2, 1}},
	}
	out, err := Chart("demo", s, Options{Width: 32, Height: 8, XLabel: "threads", YLabel: "us"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"demo", "o=a", "x=b", "threads", "us"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Rising series 'a' must appear in the top row at the right edge.
	lines := strings.Split(out, "\n")
	top := lines[2] // title, ylabel, first grid row
	if !strings.Contains(top, "o") && !strings.Contains(top, "?") {
		t.Fatalf("series a missing from top row:\n%s", out)
	}
}

func TestChartErrors(t *testing.T) {
	if _, err := Chart("t", nil, Options{}); err == nil {
		t.Error("accepted no series")
	}
	if _, err := Chart("t", []Series{{Name: "a", X: []float64{1}, Y: nil}}, Options{}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := Chart("t", []Series{{Name: "a"}}, Options{}); err == nil {
		t.Error("accepted empty series")
	}
	if _, err := Chart("t", []Series{{Name: "a", X: []float64{1}, Y: []float64{0}}}, Options{LogY: true}); err == nil {
		t.Error("accepted zero on log scale")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// Single point, constant series: must not divide by zero.
	out, err := Chart("t", []Series{{Name: "a", X: []float64{4}, Y: []float64{2}}}, Options{})
	if err != nil || out == "" {
		t.Fatalf("single point chart failed: %v", err)
	}
	out, err = Chart("t", []Series{{Name: "a", X: []float64{1, 2}, Y: []float64{5, 5}}}, Options{})
	if err != nil || out == "" {
		t.Fatalf("constant chart failed: %v", err)
	}
}

func TestChartLogScale(t *testing.T) {
	s := []Series{{Name: "a", X: []float64{1, 2, 3}, Y: []float64{0.01, 1, 100}}}
	out, err := Chart("log", s, Options{LogY: true, Height: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "100") || !strings.Contains(out, "0.01") {
		t.Fatalf("log chart missing axis labels:\n%s", out)
	}
}

func TestFromSweepTable(t *testing.T) {
	tb := table.New("sweep", "algorithm", "2T", "8T", "64T")
	tb.AddRow("sense", "0.10", "0.50", "5.80")
	tb.AddRow("opt", "0.05", "0.20", "0.57")
	series, err := FromSweepTable(tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Name != "sense" {
		t.Fatalf("series = %+v", series)
	}
	if series[1].X[2] != 64 || series[1].Y[2] != 0.57 {
		t.Fatalf("series values wrong: %+v", series[1])
	}
}

func TestFromSweepTableErrors(t *testing.T) {
	bad := table.New("x", "algorithm", "banana")
	bad.AddRow("a", "1")
	if _, err := FromSweepTable(bad); err == nil {
		t.Error("accepted non-thread column")
	}
	empty := table.New("x", "algorithm", "2T")
	if _, err := FromSweepTable(empty); err == nil {
		t.Error("accepted empty table")
	}
	nonNum := table.New("x", "algorithm", "2T")
	nonNum.AddRow("a", "oops")
	if _, err := FromSweepTable(nonNum); err == nil {
		t.Error("accepted non-numeric cell")
	}
	ragged := table.New("x", "algorithm", "2T", "4T")
	ragged.AddRow("a", "1")
	if _, err := FromSweepTable(ragged); err == nil {
		t.Error("accepted ragged row")
	}
	noCols := table.New("x")
	if _, err := FromSweepTable(noCols); err == nil {
		t.Error("accepted table without data columns")
	}
}

func TestSweepChart(t *testing.T) {
	tb := table.New("sweep", "algorithm", "2T", "64T")
	tb.AddRow("a", "0.00", "5.00") // zero cell: log mode must clamp
	out, err := SweepChart(tb, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "us/barrier") {
		t.Fatalf("missing axis label:\n%s", out)
	}
}

func TestSortSeriesByName(t *testing.T) {
	s := []Series{{Name: "b"}, {Name: "a"}}
	SortSeriesByName(s)
	if s[0].Name != "a" {
		t.Fatal("not sorted")
	}
}

func TestCollisionMarker(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{1}, Y: []float64{1}},
		{Name: "b", X: []float64{1}, Y: []float64{1}},
	}
	out, err := Chart("t", s, Options{Width: 8, Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "?") {
		t.Fatalf("collision not marked:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty input = %q", got)
	}
	got := Sparkline([]float64{0, 9})
	if got != " @" {
		t.Errorf("min/max = %q, want \" @\"", got)
	}
	// A constant series renders mid-ramp, not a div-by-zero artifact.
	if got := Sparkline([]float64{5, 5, 5}); got != "+++" {
		t.Errorf("constant = %q, want \"+++\"", got)
	}
	// Monotone ramp renders monotone glyphs.
	ramp := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	if ramp != sparkRamp {
		t.Errorf("ramp = %q, want %q", ramp, sparkRamp)
	}
	// NaN holes render as '?' without disturbing the scale.
	nan := math.NaN()
	if got := Sparkline([]float64{0, nan, 9}); got != " ?@" {
		t.Errorf("with NaN = %q, want \" ?@\"", got)
	}
	if got := Sparkline([]float64{nan, nan}); got != "??" {
		t.Errorf("all NaN = %q, want \"??\"", got)
	}
}
