package lanes

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	out := Render([]Span{
		{Lane: 0, Start: 0, End: 5, Glyph: 'a'},
		{Lane: 1, Start: 5, End: 10, Glyph: 'b'},
	}, Config{Lanes: 2, Width: 10})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "time 0.0 .. 10.0 ns") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "t00 |a") || !strings.Contains(lines[2], "b") {
		t.Fatalf("lanes wrong:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := Render(nil, Config{Lanes: 4, Width: 10}); !strings.Contains(out, "no events") {
		t.Fatalf("empty render = %q", out)
	}
	if out := Render([]Span{{Lane: 0, Glyph: 'x'}}, Config{Lanes: 0}); !strings.Contains(out, "no events") {
		t.Fatalf("zero-lane render = %q", out)
	}
}

func TestRenderLaterSpanOverwrites(t *testing.T) {
	out := Render([]Span{
		{Lane: 0, Start: 0, End: 10, Glyph: 'a'},
		{Lane: 0, Start: 4, End: 6, Glyph: 'b'},
	}, Config{Lanes: 1, Width: 10})
	lane := strings.Split(out, "\n")[1]
	if !strings.Contains(lane, "b") || !strings.Contains(lane, "a") {
		t.Fatalf("overwrite semantics broken: %q", lane)
	}
}

func TestRenderGlyphZeroWidensRange(t *testing.T) {
	// A glyph-0 span anchors the time range without drawing.
	out := Render([]Span{
		{Lane: 0, Start: 0, End: 1, Glyph: 'a'},
		{Lane: 0, Start: 0, End: 100, Glyph: 0},
	}, Config{Lanes: 1, Width: 10})
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[0], "time 0.0 .. 100.0 ns") {
		t.Fatalf("range ignored glyph-0 span: %q", lines[0])
	}
	if strings.Count(lines[1], "a") != 1 {
		t.Fatalf("glyph-0 span drew cells: %q", lines[1])
	}
}

func TestRenderOutOfRangeLane(t *testing.T) {
	out := Render([]Span{
		{Lane: 0, Start: 0, End: 1, Glyph: 'a'},
		{Lane: 7, Start: 0, End: 1, Glyph: 's'},
	}, Config{Lanes: 1, Width: 10})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || strings.Contains(lines[1], "s") {
		t.Fatalf("out-of-range lane leaked:\n%s", out)
	}
}

func TestRenderCustomLabelAndLegend(t *testing.T) {
	out := Render([]Span{{Lane: 0, Start: 0, End: 1, Glyph: 'w'}}, Config{
		Lanes:  1,
		Width:  8,
		Legend: "(w = waiting)",
		Label:  func(l int) string { return "p0" + string(rune('0'+l)) },
	})
	if !strings.Contains(out, "(w = waiting)") || !strings.Contains(out, "p00 |") {
		t.Fatalf("custom label/legend missing:\n%s", out)
	}
}

func TestRenderZeroDurationAndClamp(t *testing.T) {
	// Zero-length spans land in exactly one cell; a span at maxT clamps
	// into the last cell instead of overrunning.
	out := Render([]Span{
		{Lane: 0, Start: 0, End: 0, Glyph: 's'},
		{Lane: 0, Start: 10, End: 10, Glyph: 'l'},
	}, Config{Lanes: 1, Width: 10})
	lane := strings.Split(out, "\n")[1]
	if !strings.Contains(lane, "s") || !strings.Contains(lane, "l") {
		t.Fatalf("zero-duration spans missing: %q", lane)
	}
	if len(lane) != len("t00 |")+10+1 {
		t.Fatalf("lane overran width: %q", lane)
	}
}
