// Package lanes renders per-lane Gantt timelines as fixed-width text:
// one row per lane, one column per time bucket, a glyph per span. It is
// the shared back end of sim.Recorder.Gantt (simulated memory-operation
// timelines) and obs.Episode.Gantt (real captured barrier episodes), so
// both substrates produce the same visual language.
package lanes

import (
	"fmt"
	"strings"
)

// Span is one glyph-filled interval on a lane. Zero-length spans still
// occupy one cell so instantaneous events stay visible. A Span with
// Glyph 0 contributes to the rendered time range but draws nothing —
// callers use this for events that anchor the timeline without a
// visual (e.g. simulator wake-ups).
type Span struct {
	Lane  int
	Start float64 // ns
	End   float64 // ns, >= Start
	Glyph byte
}

// Config shapes the rendering.
type Config struct {
	// Lanes is the number of rows; spans on other lanes are ignored
	// (but still widen the time range).
	Lanes int
	// Width is the number of time buckets per lane (default 72).
	Width int
	// Legend is appended to the header's time-range line.
	Legend string
	// Label formats a lane's row prefix; default "t%02d".
	Label func(lane int) string
}

// Render draws the spans. Later spans overwrite earlier ones in shared
// cells, so emission order decides what dominates a busy bucket. With
// no spans (or no lanes) it returns "(no events)\n".
func Render(spans []Span, cfg Config) string {
	width := cfg.Width
	if width <= 0 {
		width = 72
	}
	if len(spans) == 0 || cfg.Lanes <= 0 {
		return "(no events)\n"
	}
	label := cfg.Label
	if label == nil {
		label = func(lane int) string { return fmt.Sprintf("t%02d", lane) }
	}
	minT, maxT := spans[0].Start, 0.0
	for _, s := range spans {
		if s.Start < minT {
			minT = s.Start
		}
		if s.End > maxT {
			maxT = s.End
		}
	}
	if maxT <= minT {
		maxT = minT + 1
	}
	scale := float64(width) / (maxT - minT)
	rows := make([][]byte, cfg.Lanes)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, s := range spans {
		if s.Glyph == 0 || s.Lane < 0 || s.Lane >= cfg.Lanes {
			continue
		}
		from := int((s.Start - minT) * scale)
		if from >= width {
			from = width - 1 // a span starting exactly at maxT still gets a cell
		}
		to := int((s.End - minT) * scale)
		if to >= width {
			to = width - 1
		}
		for c := from; c <= to; c++ {
			rows[s.Lane][c] = s.Glyph
		}
	}
	var b strings.Builder
	header := fmt.Sprintf("time %.1f .. %.1f ns", minT, maxT)
	if cfg.Legend != "" {
		header += " " + cfg.Legend
	}
	b.WriteString(header)
	b.WriteByte('\n')
	for lane, row := range rows {
		fmt.Fprintf(&b, "%s |%s|\n", label(lane), row)
	}
	return b.String()
}
