package experiments

import (
	"fmt"

	"armbarrier/internal/stats"
	"armbarrier/internal/table"
	"armbarrier/sim/algo"
	"armbarrier/topology"
)

func init() {
	All = append(All,
		Experiment{ID: "phases", Title: "Extension: Arrival vs Notification phase breakdown (Section V)", Run: runPhases},
		Experiment{ID: "noise", Title: "Extension: per-episode steady-state spread (the paper's <2% noise)", Run: runNoise},
	)
}

// runPhases splits the optimized barrier's cost into its two phases
// for each wake-up strategy — the decomposition Section V optimizes.
func runPhases(opts Options) []*table.Table {
	var out []*table.Table
	for _, m := range topology.ARMMachines() {
		tb := table.New(
			fmt.Sprintf("Phase breakdown at 64 threads on %s (ns)", m.Name),
			"wake-up", "arrival", "notification", "total")
		for _, w := range []algo.WakeupKind{algo.WakeGlobal, algo.WakeBinaryTree, algo.WakeNUMATree} {
			cfg := algo.FWayConfig{
				Schedule:     nil, // balanced; set fixed fan-in below
				Padded:       true,
				Wakeup:       w,
				ClusterMajor: true,
			}
			pb, err := algo.MeasurePhases(m, 64, cfg, algo.MeasureOptions{Episodes: opts.episodes()})
			if err != nil {
				panic(err)
			}
			tb.AddRow(w.String(), table.Cell(pb.ArrivalNs), table.Cell(pb.NotificationNs), table.Cell(pb.TotalNs()))
		}
		tb.AddNote("padded f-way arrival is identical across rows; only the Notification-Phase differs")
		out = append(out, tb)
	}
	return out
}

// runNoise reports per-episode spread for a few algorithms, the
// simulator analogue of the paper's "noise across runs below 2%".
func runNoise(opts Options) []*table.Table {
	tb := table.New("Per-episode steady-state spread at 64 threads (relative stddev, %)",
		"algorithm", "phytium2000", "thunderx2", "kunpeng920")
	for _, name := range []string{"sense", "dis", "stour", "optimized"} {
		cells := []string{name}
		for _, m := range topology.ARMMachines() {
			eps, err := algo.MeasureEpisodes(m, 64, algo.Registry[name], algo.MeasureOptions{
				Warmup: 5, Episodes: opts.episodes() + 5,
			})
			if err != nil {
				panic(err)
			}
			cells = append(cells, table.Cell(100*stats.RelStdDev(eps)))
		}
		tb.AddRow(cells...)
	}
	tb.AddNote("deterministic simulator: spread reflects episode pipelining, not measurement noise")
	return []*table.Table{tb}
}
