package experiments

import (
	"fmt"

	"armbarrier/internal/table"
	"armbarrier/sim"
	"armbarrier/sim/algo"
	"armbarrier/topology"
)

func init() {
	All = append(All,
		Experiment{ID: "critpath", Title: "Extension: critical-path attribution of one barrier episode", Run: runCritPath},
	)
}

// runCritPath traces one steady-state episode per algorithm and
// machine and attributes its critical path: how much of the makespan
// is remote transfers, local work, and dependency idle time. The
// remote share is the quantity every optimization in the paper
// attacks.
func runCritPath(opts Options) []*table.Table {
	var out []*table.Table
	for _, m := range topology.ARMMachines() {
		tb := table.New(
			fmt.Sprintf("Critical path of one 64-thread episode on %s", m.Name),
			"algorithm", "span ns", "ops", "thread hops", "remote %", "local %", "idle %")
		for _, name := range []string{"sense", "dis", "stour", "optimized"} {
			cp := episodeCriticalPath(m, 64, algo.Registry[name])
			total := cp.TotalNs()
			tb.AddRow(name,
				table.Cell(total),
				table.CellInt(len(cp.Ops)),
				table.CellInt(cp.CrossThreadHops),
				table.Cell(100*cp.RemoteNs/total),
				table.Cell(100*cp.LocalNs/total),
				table.Cell(100*cp.IdleNs/total))
		}
		tb.AddNote("path reconstructed from line-queue, interconnect-queue and wake dependencies")
		out = append(out, tb)
	}
	return out
}

// episodeCriticalPath traces the final episode of a short run.
func episodeCriticalPath(m *topology.Machine, threads int, factory algo.Factory) sim.CriticalPath {
	place, err := topology.Compact(m, threads)
	if err != nil {
		panic(err)
	}
	rec := &sim.Recorder{}
	tracing := false
	k, err := sim.New(sim.Config{Machine: m, Placement: place, Trace: func(e sim.Event) {
		if tracing {
			rec.Record(e)
		}
	}})
	if err != nil {
		panic(err)
	}
	b := factory(k, threads)
	const warm = 3
	k.Run(func(t *sim.Thread) {
		for e := 0; e < warm; e++ {
			b.Wait(t)
		}
		if t.ID() == 0 {
			tracing = true
		}
		b.Wait(t)
	})
	cp, err := rec.CriticalPath()
	if err != nil {
		panic(err)
	}
	return cp
}

// EpisodeCriticalPath is exported for tests.
func EpisodeCriticalPath(m *topology.Machine, threads int, factory algo.Factory) sim.CriticalPath {
	return episodeCriticalPath(m, threads, factory)
}
