package experiments

import (
	"testing"

	"armbarrier/sim/algo"
	"armbarrier/topology"
)

func TestOpBreakdownCounts(t *testing.T) {
	m := topology.Kunpeng920()
	opts := Options{Episodes: 5}
	// Dissemination at 64 threads: every thread performs one store and
	// one (eventual) successful spin per round, 6 rounds -> 384 stores
	// per episode, no atomics.
	d, err := OpBreakdown(m, 64, "dis", opts)
	if err != nil {
		t.Fatal(err)
	}
	stores := d.OpsPerEpisode(d.Stats.Stores)
	if stores < 380 || stores > 390 {
		t.Errorf("dis stores/episode = %.1f, want about 384", stores)
	}
	if d.Stats.Atomics != 0 {
		t.Errorf("dis performed %d atomics, want 0", d.Stats.Atomics)
	}

	// SENSE: one atomic per thread per episode plus the occasional
	// counter reset store.
	s, err := OpBreakdown(m, 64, "sense", opts)
	if err != nil {
		t.Fatal(err)
	}
	atomics := s.OpsPerEpisode(s.Stats.Atomics)
	if atomics < 63.5 || atomics > 64.5 {
		t.Errorf("sense atomics/episode = %.1f, want 64", atomics)
	}

	// The optimized barrier must move far fewer remote cachelines than
	// SENSE: that is the entire optimization story.
	o, err := OpBreakdown(m, 64, "optimized", opts)
	if err != nil {
		t.Fatal(err)
	}
	if o.Stats.Atomics != 0 {
		t.Errorf("optimized performed %d atomics, want 0 (static algorithm)", o.Stats.Atomics)
	}
	if o.NsPerBarrier >= s.NsPerBarrier {
		t.Errorf("optimized (%.0f ns) not cheaper than sense (%.0f ns)", o.NsPerBarrier, s.NsPerBarrier)
	}
}

func TestOpBreakdownUnknownAlgo(t *testing.T) {
	if _, err := OpBreakdown(topology.Kunpeng920(), 8, "nope", Options{}); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
}

func TestModelCheckOrderingMatchesSim(t *testing.T) {
	// The analytical model's preferred wake-up strategy must agree
	// with the simulator's at 64 threads on all three machines — the
	// consistency the paper's methodology rests on.
	opts := Options{Episodes: 6}
	for _, m := range topology.ARMMachines() {
		pred := "tree"
		if m.Name == "kunpeng920" {
			pred = "global"
		}
		simGlobal := MeasureUs(m, 64, algo.OptimizedWith(algo.WakeGlobal), opts)
		simTree := MeasureUs(m, 64, algo.OptimizedWith(algo.WakeBinaryTree), opts)
		simPref := "tree"
		if simGlobal <= simTree {
			simPref = "global"
		}
		if simPref != pred {
			t.Errorf("%s: simulator prefers %s, paper/model say %s", m.Name, simPref, pred)
		}
	}
}

func TestRepresentativeLatencyBounds(t *testing.T) {
	for _, m := range topology.ARMMachines() {
		L := RepresentativeLatency(m)
		min, max := m.Latency[0], m.MaxLatency()
		if L < min || L > max {
			t.Errorf("%s: representative latency %.1f outside [%.1f, %.1f]", m.Name, L, min, max)
		}
	}
}

func TestRelatedAlgorithmsShapes(t *testing.T) {
	opts := Options{Episodes: 6}
	for _, m := range topology.ARMMachines() {
		// n-way dissemination must not be slower than classic
		// dissemination at scale (fewer rounds), per Hoefler et al.
		dis := MeasureUs(m, 64, algo.NewDissemination, opts)
		ndis := MeasureUs(m, 64, algo.NDis(2), opts)
		if ndis > dis*1.1 {
			t.Errorf("%s: ndis2 (%.2fus) much slower than dis (%.2fus)", m.Name, ndis, dis)
		}
		// The ring barrier's critical path is O(P): it must be slower
		// than the optimized barrier at 64 threads.
		ring := MeasureUs(m, 64, algo.NewRing, opts)
		opt := MeasureUs(m, 64, algo.Optimized, opts)
		if ring <= opt {
			t.Errorf("%s: ring (%.2fus) not slower than optimized (%.2fus)", m.Name, ring, opt)
		}
	}
}

func TestHybridBeatsSense(t *testing.T) {
	// Rodchenko's hybrid exists because it beats the centralized
	// barrier; verify that carries over.
	opts := Options{Episodes: 6}
	for _, m := range topology.ARMMachines() {
		hybrid := MeasureUs(m, 64, algo.NewHybrid, opts)
		sense := MeasureUs(m, 64, algo.NewSense, opts)
		if hybrid >= sense {
			t.Errorf("%s: hybrid (%.2fus) not cheaper than sense (%.2fus)", m.Name, hybrid, sense)
		}
	}
}
