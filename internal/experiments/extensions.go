package experiments

import (
	"fmt"

	"armbarrier/internal/table"
	"armbarrier/model"
	"armbarrier/sim/algo"
	"armbarrier/topology"
)

// This file holds the extension experiments that go beyond the paper's
// figures: the per-algorithm memory-operation breakdown underlying the
// Section III analysis, a cross-check of the analytical model against
// the simulator, and the related-work algorithms of Section VII.

func init() {
	All = append(All,
		Experiment{ID: "ops", Title: "Extension: per-episode memory-operation breakdown (Section III)", Run: runOpBreakdown},
		Experiment{ID: "modelcheck", Title: "Extension: analytical model vs simulator", Run: runModelCheck},
		Experiment{ID: "related", Title: "Extension: related-work algorithms (Section VII)", Run: runRelated},
		Experiment{ID: "sweep", Title: "Extension: every algorithm x machine x thread count in one table", Run: runSweep},
	)
}

// runSweep produces the complete data set behind Figures 6 and 7 plus
// the runtime and optimized barriers in one table per machine — the
// raw material for external plotting (use `barriersim -exp sweep -csv`).
func runSweep(opts Options) []*table.Table {
	names := []string{"sense", "dis", "cmb", "mcs", "tour", "stour", "dtour", "gcc", "llvm", "optimized", "ndis2", "hybrid", "ring"}
	var out []*table.Table
	for _, m := range topology.AllMachines() {
		out = append(out, sweepTable(
			fmt.Sprintf("All algorithms on %s (us)", m.Name), m, namedFactories(names...), opts))
	}
	return out
}

// runOpBreakdown reports, per algorithm at 64 threads, the average
// per-episode counts of local/remote loads, stores and atomics plus
// total invalidation traffic — the operation classes (R_L, R_R, W_L,
// W_R) the paper's cost model is built from.
func runOpBreakdown(opts Options) []*table.Table {
	var out []*table.Table
	names := append(append([]string{}, algo.PaperAlgorithms...), "optimized")
	for _, m := range topology.ARMMachines() {
		tb := table.New(
			fmt.Sprintf("Memory operations per barrier episode on %s (64 threads)", m.Name),
			"algorithm", "loads", "remote loads", "stores", "remote stores", "atomics", "inval ns", "ns/barrier")
		for _, name := range names {
			d, err := algo.MeasureDetailed(m, 64, algo.Registry[name], algo.MeasureOptions{Episodes: opts.episodes()})
			if err != nil {
				panic(err)
			}
			tb.AddRow(name,
				table.Cell(d.OpsPerEpisode(d.Stats.Loads)),
				table.Cell(d.OpsPerEpisode(d.Stats.RemoteLoads)),
				table.Cell(d.OpsPerEpisode(d.Stats.Stores)),
				table.Cell(d.OpsPerEpisode(d.Stats.RemoteStores)),
				table.Cell(d.OpsPerEpisode(d.Stats.Atomics)),
				table.Cell(d.Stats.InvalidationNs/float64(d.Episodes+d.Warmup)),
				table.Cell(d.NsPerBarrier))
		}
		tb.AddNote("R_L/R_R/W_L/W_R classes of Section III-B, averaged over episodes")
		out = append(out, tb)
	}
	return out
}

// OpBreakdown exposes a single detailed measurement for tests.
func OpBreakdown(m *topology.Machine, threads int, name string, opts Options) (algo.Measurement, error) {
	f, err := algo.ByName(name)
	if err != nil {
		return algo.Measurement{}, err
	}
	return algo.MeasureDetailed(m, threads, f, algo.MeasureOptions{Episodes: opts.episodes()})
}

// runModelCheck compares the analytical predictions (Equations 1, 3
// and 4, evaluated with each machine's α, c and a representative
// cross-cluster latency) against the simulator's measurement of the
// corresponding barrier configurations at 64 threads.
func runModelCheck(opts Options) []*table.Table {
	tb := table.New("Analytical model vs simulator (64 threads, ns)",
		"machine", "T(4) arrival", "T_global", "T_tree",
		"sim opt+global", "sim opt+bintree", "model prefers", "sim prefers")
	for _, m := range topology.ARMMachines() {
		P := 64
		L := representativeLatency(m)
		arrival := model.ArrivalCost(P, 4, L, m.Alpha)
		tg := model.GlobalWakeupCost(P, L, m.Alpha, m.ReadContention)
		tt := model.TreeWakeupCost(P, L, m.Alpha)
		simGlobal := algo.MustMeasure(m, P, algo.OptimizedWith(algo.WakeGlobal), algo.MeasureOptions{Episodes: opts.episodes()})
		simTree := algo.MustMeasure(m, P, algo.OptimizedWith(algo.WakeBinaryTree), algo.MeasureOptions{Episodes: opts.episodes()})
		simPref := "tree"
		if simGlobal <= simTree {
			simPref = "global"
		}
		tb.AddRow(m.Name,
			table.Cell(arrival), table.Cell(tg), table.Cell(tt),
			table.Cell(simGlobal), table.Cell(simTree),
			model.PredictWakeup(m, P), simPref)
	}
	tb.AddNote("L = mean cross-cluster latency; the model predicts strategy ordering, not absolute cost")
	return []*table.Table{tb}
}

// representativeLatency returns the mean latency over cross-cluster
// core pairs involving core 0 — the single L the closed-form
// equations need.
func representativeLatency(m *topology.Machine) float64 {
	sum, n := 0.0, 0
	for b := 0; b < m.Cores; b++ {
		if b != 0 && !m.SameCluster(0, b) {
			sum += m.LatencyBetween(0, b)
			n++
		}
	}
	if n == 0 {
		return m.Latency[0]
	}
	return sum / float64(n)
}

// RepresentativeLatency is exported for tests.
func RepresentativeLatency(m *topology.Machine) float64 { return representativeLatency(m) }

// runRelated compares the Section VII related-work algorithms against
// the classic dissemination barrier and the optimized barrier.
func runRelated(opts Options) []*table.Table {
	var out []*table.Table
	for _, m := range topology.ARMMachines() {
		rows := []namedFactory{
			{name: "dis", factory: algo.NewDissemination},
			{name: "ndis2 (Hoefler)", factory: algo.NDis(2)},
			{name: "hybrid (Rodchenko)", factory: algo.NewHybrid},
			{name: "ring (Aravind)", factory: algo.NewRing},
			{name: "optimized (this paper)", factory: algo.Optimized},
		}
		out = append(out, sweepTable(
			fmt.Sprintf("Related-work algorithms on %s (us)", m.Name), m, rows, opts))
	}
	return out
}
