package experiments

import (
	"math"
	"strings"
	"testing"

	"armbarrier/sim/algo"
	"armbarrier/topology"
)

var fastOpts = Options{Episodes: 6, Threads: []int{1, 4, 16, 64}}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables := e.Run(fastOpts)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				out := tb.Render()
				if len(out) == 0 || len(tb.Rows) == 0 {
					t.Fatalf("%s produced an empty table %q", e.ID, tb.Title)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig7"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("ByID accepted unknown id")
	}
	if got := len(IDs()); got != len(All) {
		t.Fatalf("IDs() returned %d ids", got)
	}
}

// --- Tables I-III: the simulator must reproduce the configured
// latency layers through the ping-pong micro-benchmark. ---

func TestPingPongMatchesLatencyTables(t *testing.T) {
	cases := []struct {
		m    *topology.Machine
		a, b int
	}{
		{topology.Phytium2000(), 0, 1},
		{topology.Phytium2000(), 0, 8},
		{topology.Phytium2000(), 0, 56},
		{topology.ThunderX2(), 0, 1},
		{topology.ThunderX2(), 0, 32},
		{topology.Kunpeng920(), 0, 1},
		{topology.Kunpeng920(), 0, 4},
		{topology.Kunpeng920(), 0, 32},
	}
	for _, c := range cases {
		got := PingPongLatency(c.m, c.a, c.b)
		want := c.m.LatencyBetween(c.a, c.b)
		// Allow the reader-contention term of a single reader (0) plus
		// small scheduling effects.
		if math.Abs(got-want) > 0.05*want+1 {
			t.Errorf("%s (%d,%d): ping-pong %.2f ns, want about %.2f ns", c.m.Name, c.a, c.b, got, want)
		}
	}
}

func TestPingPongLocalEpsilon(t *testing.T) {
	m := topology.ThunderX2()
	if got := PingPongLatency(m, 3, 3); math.Abs(got-m.Epsilon) > 0.01 {
		t.Fatalf("local ping-pong %.3f, want eps %.3f", got, m.Epsilon)
	}
}

// --- Figure 5: ARMv8 runtime barriers are several times more
// expensive than the Intel baseline. ---

func TestFigure5ARMSlowerThanIntel(t *testing.T) {
	opts := Options{Episodes: 6}
	intel := MeasureUs(topology.XeonGold(), 32, algo.GCC, opts)
	tx2 := MeasureUs(topology.ThunderX2(), 32, algo.GCC, opts)
	if tx2 < 3*intel {
		t.Fatalf("GCC at 32 threads: tx2 %.2fus vs intel %.2fus — want several times slower", tx2, intel)
	}
}

// --- Figure 6/7: SENSE grows roughly linearly and is the most
// expensive algorithm at scale; LLVM's tree barrier beats GCC. ---

func TestSenseLinearGrowth(t *testing.T) {
	opts := Options{Episodes: 6}
	for _, m := range topology.ARMMachines() {
		c16 := MeasureUs(m, 16, algo.NewSense, opts)
		c64 := MeasureUs(m, 64, algo.NewSense, opts)
		if c64 < 2.5*c16 {
			t.Errorf("%s: SENSE 16T=%.2f 64T=%.2f — want near-linear growth", m.Name, c16, c64)
		}
	}
}

func TestSenseWorstAtScale(t *testing.T) {
	opts := Options{Episodes: 6}
	for _, m := range topology.ARMMachines() {
		sense := MeasureUs(m, 64, algo.NewSense, opts)
		for _, name := range []string{"dis", "cmb", "mcs", "tour", "stour", "dtour"} {
			v := MeasureUs(m, 64, algo.Registry[name], opts)
			if v >= sense {
				t.Errorf("%s: %s (%.2fus) not cheaper than SENSE (%.2fus) at 64T", m.Name, name, v, sense)
			}
		}
	}
}

func TestLLVMBeatsGCCAtScale(t *testing.T) {
	opts := Options{Episodes: 6}
	for _, m := range topology.ARMMachines() {
		gcc := MeasureUs(m, 64, algo.GCC, opts)
		llvm := MeasureUs(m, 64, algo.LLVM, opts)
		if llvm >= gcc {
			t.Errorf("%s: LLVM (%.2fus) not cheaper than GCC (%.2fus) at 64T", m.Name, llvm, gcc)
		}
	}
}

func TestDisseminationDegradesPastClusterSize(t *testing.T) {
	// DIS should be clearly worse than the static tournament family at
	// 64 threads (Section IV-B) on the clustered machines.
	opts := Options{Episodes: 6}
	for _, m := range topology.ARMMachines() {
		dis := MeasureUs(m, 64, algo.NewDissemination, opts)
		tour := MeasureUs(m, 64, algo.NewTournament, opts)
		if dis <= tour {
			t.Errorf("%s: DIS (%.2fus) not worse than TOUR (%.2fus) at 64T", m.Name, dis, tour)
		}
	}
}

// --- Figure 11: padding and the fixed fan-in help the arrival phase. ---

func TestFigure11PaddingHelps(t *testing.T) {
	opts := Options{Episodes: 6}
	for _, m := range topology.ARMMachines() {
		packed := MeasureUs(m, 64, algo.STOUR, opts)
		padded := MeasureUs(m, 64, algo.STOURPadded, opts)
		pad4 := MeasureUs(m, 64, algo.Static4WayPadded, opts)
		if padded >= packed {
			t.Errorf("%s: padding did not help (packed %.2f, padded %.2f)", m.Name, packed, padded)
		}
		if pad4 > padded*1.02 {
			t.Errorf("%s: fixed fan-in 4 (%.2f) worse than padded f-way (%.2f)", m.Name, pad4, padded)
		}
	}
}

// --- Figure 12: tree wake-ups win on Phytium/ThunderX2, the global
// wake-up wins on Kunpeng920, and the NUMA-aware tree beats the binary
// tree on the clustered machines at full scale. ---

func TestFigure12WakeupChoices(t *testing.T) {
	opts := Options{Episodes: 6}
	for _, m := range []*topology.Machine{topology.Phytium2000(), topology.ThunderX2()} {
		global := MeasureUs(m, 64, algo.OptimizedWith(algo.WakeGlobal), opts)
		bin := MeasureUs(m, 64, algo.OptimizedWith(algo.WakeBinaryTree), opts)
		numa := MeasureUs(m, 64, algo.OptimizedWith(algo.WakeNUMATree), opts)
		if bin >= global {
			t.Errorf("%s: binary tree (%.2f) not better than global (%.2f)", m.Name, bin, global)
		}
		if numa > bin {
			t.Errorf("%s: NUMA tree (%.2f) worse than binary tree (%.2f)", m.Name, numa, bin)
		}
	}
	kp := topology.Kunpeng920()
	global := MeasureUs(kp, 64, algo.OptimizedWith(algo.WakeGlobal), opts)
	bin := MeasureUs(kp, 64, algo.OptimizedWith(algo.WakeBinaryTree), opts)
	if global > bin {
		t.Errorf("kunpeng920: global (%.2f) should beat the binary tree (%.2f)", global, bin)
	}
}

func TestFigure12SmallCountsConverge(t *testing.T) {
	// "when the number of threads is small, T_global and T_tree are
	// equal" — at 4 threads the strategies should be within ~35%.
	opts := Options{Episodes: 6}
	for _, m := range topology.ARMMachines() {
		global := MeasureUs(m, 4, algo.OptimizedWith(algo.WakeGlobal), opts)
		bin := MeasureUs(m, 4, algo.OptimizedWith(algo.WakeBinaryTree), opts)
		ratio := global / bin
		if ratio < 1/1.4 || ratio > 1.4 {
			t.Errorf("%s: at 4T global %.3f vs bintree %.3f diverge (ratio %.2f)", m.Name, global, bin, ratio)
		}
	}
}

// --- Figure 13: fan-in 4 is optimal at 64 threads on every machine. ---

func TestFigure13FanIn4Optimal(t *testing.T) {
	opts := Options{Episodes: 6}
	for _, m := range topology.ARMMachines() {
		base := MeasureUs(m, 64, algo.StaticFixedFanIn(4), opts)
		for _, f := range Figure13FanIns {
			if f == 4 {
				continue
			}
			v := MeasureUs(m, 64, algo.StaticFixedFanIn(f), opts)
			if v < base {
				t.Errorf("%s: fan-in %d (%.2fus) beats fan-in 4 (%.2fus)", m.Name, f, v, base)
			}
		}
	}
}

// --- Table IV: the headline speedups. ---

func TestTable4Speedups(t *testing.T) {
	opts := Options{Episodes: 8}
	type target struct {
		gccLo, gccHi   float64
		llvmLo, llvmHi float64
		bestLo         float64
	}
	// Wide acceptance bands around the paper's 8x/23x/11x (GCC),
	// 2.7x/2.5x/9x (LLVM) and 1.7x/1.8x/1.4x (state-of-the-art):
	// the substrate is a simulator, so we pin the decade and ordering.
	targets := map[string]target{
		"phytium2000": {gccLo: 5, gccHi: 20, llvmLo: 1.8, llvmHi: 5, bestLo: 1.05},
		"thunderx2":   {gccLo: 12, gccHi: 60, llvmLo: 1.6, llvmHi: 5, bestLo: 1.05},
		"kunpeng920":  {gccLo: 6, gccHi: 25, llvmLo: 5, llvmHi: 15, bestLo: 1.02},
	}
	for _, m := range topology.ARMMachines() {
		tg := targets[m.Name]
		opt := MeasureUs(m, 64, algo.Optimized, opts)
		gcc := MeasureUs(m, 64, algo.GCC, opts) / opt
		llvm := MeasureUs(m, 64, algo.LLVM, opts) / opt
		_, best := BestExisting(m, 64, opts)
		bestX := best / opt
		if gcc < tg.gccLo || gcc > tg.gccHi {
			t.Errorf("%s: GCC speedup %.1fx outside [%.0f, %.0f]", m.Name, gcc, tg.gccLo, tg.gccHi)
		}
		if llvm < tg.llvmLo || llvm > tg.llvmHi {
			t.Errorf("%s: LLVM speedup %.1fx outside [%.1f, %.1f]", m.Name, llvm, tg.llvmLo, tg.llvmHi)
		}
		if bestX < tg.bestLo {
			t.Errorf("%s: optimized (%.2fus) not faster than best existing (%.2fus)", m.Name, opt, best)
		}
	}
}

// --- Extensions ---

func TestPlacementStudyClusterAwareHelpsWhenScattered(t *testing.T) {
	tables := runPlacement(Options{Episodes: 6})
	if len(tables) != 3 {
		t.Fatalf("placement study produced %d tables", len(tables))
	}
	// On Kunpeng920 (small clusters), under scatter pinning the
	// cluster-aware ranks must not lose to naive ranks.
	m := topology.Kunpeng920()
	scatter, err := topology.Scatter(m, 64)
	if err != nil {
		t.Fatal(err)
	}
	aware := algo.MustMeasure(m, 64, optimizedWithRanks(true), algo.MeasureOptions{Episodes: 6, Placement: scatter})
	naive := algo.MustMeasure(m, 64, optimizedWithRanks(false), algo.MeasureOptions{Episodes: 6, Placement: scatter})
	if aware > naive*1.05 {
		t.Errorf("cluster-aware ranks (%.0fns) worse than naive (%.0fns) under scatter", aware, naive)
	}
}

func TestDisPaddingStudy(t *testing.T) {
	tables := runDisPadding(Options{Episodes: 6, Threads: []int{16, 64}})
	if len(tables) != 3 {
		t.Fatalf("dis padding study produced %d tables", len(tables))
	}
	for _, tb := range tables {
		if !strings.Contains(tb.Title, "Dissemination") {
			t.Fatalf("unexpected table %q", tb.Title)
		}
	}
}

func TestSweepTableColumns(t *testing.T) {
	m := topology.Kunpeng920()
	tb := sweepTable("t", m, namedFactories("tour"), Options{Episodes: 4, Threads: []int{4, 2, 64}})
	cols := SortedThreadColumns(tb)
	if len(cols) != 3 || cols[0] != 2 || cols[2] != 64 {
		t.Fatalf("thread columns = %v", cols)
	}
}

func TestCubeRoot(t *testing.T) {
	if got := cubeRoot(27); math.Abs(got-3) > 1e-6 {
		t.Fatalf("cubeRoot(27) = %g", got)
	}
	if got := cubeRoot(1); math.Abs(got-1) > 1e-6 {
		t.Fatalf("cubeRoot(1) = %g", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.episodes() != 10 {
		t.Fatalf("default episodes = %d", o.episodes())
	}
	m := topology.XeonGold() // 32 cores: 48/64 must be dropped
	ts := o.threads(m)
	for _, p := range ts {
		if p > 32 {
			t.Fatalf("thread sweep %v exceeds cores", ts)
		}
	}
	if len(ts) == 0 {
		t.Fatal("empty default sweep")
	}
}
