package experiments

import (
	"testing"

	"armbarrier/topology"
)

func TestFigure8PaddedEliminatesRemoteStoreChain(t *testing.T) {
	m := topology.Kunpeng920()
	opts := Options{Episodes: 5}
	packedStats, packedNs := traceBarrierPoint(m, false, opts)
	paddedStats, paddedNs := traceBarrierPoint(m, true, opts)
	// The paper: padding "reduces the number of W_R from f-1 to 1 in
	// the best case" — steady state here reaches the best case.
	if paddedStats.RemoteStores >= packedStats.RemoteStores {
		t.Errorf("padded remote stores (%d) not fewer than packed (%d)",
			paddedStats.RemoteStores, packedStats.RemoteStores)
	}
	if paddedNs >= packedNs {
		t.Errorf("padded episode (%.1fns) not cheaper than packed (%.1fns)", paddedNs, packedNs)
	}
}

func TestFigure9FanIn4PreservesGrouping(t *testing.T) {
	m := topology.Phytium2000()
	intra3, cross3 := arrivalEdgeCounts(m, 9, 3)
	intra4, cross4 := arrivalEdgeCounts(m, 9, 4)
	// 9 threads always produce 8 signalling edges.
	if intra3+cross3 != 8 || intra4+cross4 != 8 {
		t.Fatalf("edge totals wrong: %d+%d, %d+%d", intra3, cross3, intra4, cross4)
	}
	// Fan-in 4 must keep more edges inside the N_c=4 core groups.
	if cross4 >= cross3 {
		t.Errorf("fan-in 4 cross edges (%d) not fewer than fan-in 3 (%d)", cross4, cross3)
	}
}

func TestFigure10EdgeCounts(t *testing.T) {
	tables := runFigure10(Options{Episodes: 5})
	if len(tables) != 1 || len(tables[0].Rows) != 2 {
		t.Fatalf("unexpected fig10 shape: %+v", tables)
	}
	// Row cells: name, total, cross, notification. Binary ~32 cross,
	// NUMA exactly 1 (asserted precisely in model tests; here via the
	// rendered table).
	if tables[0].Rows[1][2] != "1" {
		t.Errorf("NUMA tree cross-socket edges cell = %q, want 1", tables[0].Rows[1][2])
	}
}
