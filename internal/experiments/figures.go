package experiments

import (
	"fmt"

	"armbarrier/internal/table"
	"armbarrier/sim"
	"armbarrier/sim/algo"
	"armbarrier/topology"
)

// ---- Tables I-III: core-to-core latency micro-benchmark ----
//
// The paper measures these with a two-thread micro-benchmark: one
// thread places data, the other accesses it, pinned to chosen cores.
// We run the same ping-pong on the simulator and report the average
// observed remote-read latency, validating that the simulator exposes
// exactly the configured layer structure.

// PingPongLatency measures the average latency thread 1 (on core b)
// pays to read a line freshly written by thread 0 (on core a). With
// a == b it measures the local latency ε.
func PingPongLatency(m *topology.Machine, a, b int) float64 {
	const iters = 20
	if a == b {
		// Local: one thread re-reading its own line.
		place, err := topology.Custom(m, []int{a})
		if err != nil {
			panic(err)
		}
		var total float64
		var count int
		k, err := sim.New(sim.Config{Machine: m, Placement: place, Trace: func(e sim.Event) {
			if e.Kind == sim.OpLoad {
				total += e.Cost
				count++
			}
		}})
		if err != nil {
			panic(err)
		}
		x := k.AllocPadded(1)[0]
		k.Run(func(t *sim.Thread) {
			t.Store(x, 1)
			for i := 0; i < iters; i++ {
				t.Load(x)
			}
		})
		return total / float64(count)
	}
	place, err := topology.Custom(m, []int{a, b})
	if err != nil {
		panic(err)
	}
	var total float64
	var count int
	k, err := sim.New(sim.Config{Machine: m, Placement: place, Trace: func(e sim.Event) {
		if e.Kind == sim.OpLoad && e.Thread == 1 && e.Remote {
			total += e.Cost
			count++
		}
	}})
	if err != nil {
		panic(err)
	}
	data := k.AllocPadded(1)[0]
	ack := k.AllocPadded(1)[0]
	k.Run(func(t *sim.Thread) {
		if t.ID() == 0 {
			// Producer: place a new version, wait for the ack.
			for i := uint64(1); i <= iters; i++ {
				t.Store(data, i)
				t.SpinUntilEqual(ack, i)
			}
		} else {
			for i := uint64(1); i <= iters; i++ {
				t.SpinUntilEqual(data, i)
				t.Store(ack, i)
			}
		}
	})
	if count == 0 {
		panic("experiments: ping-pong produced no remote loads")
	}
	return total / float64(count)
}

// latencyTable renders one Tables I-III row set: the probe pairs with
// their layer names.
func latencyTable(m *topology.Machine, probes []latencyProbe) *table.Table {
	tb := table.New(fmt.Sprintf("Core-to-core latencies on %s", m.Name), "pair", "measured(ns)", "paper(ns)")
	for _, p := range probes {
		got := PingPongLatency(m, p.a, p.b)
		tb.AddRow(p.label, table.Cell(got), table.Cell(m.LatencyBetween(p.a, p.b)))
	}
	tb.AddNote("measured = two-thread ping-pong on the simulator; paper = Tables I-III input values")
	return tb
}

type latencyProbe struct {
	label string
	a, b  int
}

func runTable1(opts Options) []*table.Table {
	m := topology.Phytium2000()
	probes := []latencyProbe{
		{"eps (local)", 0, 0},
		{"L0 (within a core group)", 0, 1},
		{"L1 (within a panel)", 0, 4},
		{"L2 (panel 0-1)", 0, 8},
		{"L3 (panel 0-2)", 0, 16},
		{"L4 (panel 0-3)", 0, 24},
		{"L5 (panel 0-4)", 0, 32},
		{"L6 (panel 0-5)", 0, 40},
		{"L7 (panel 0-6)", 0, 48},
		{"L8 (panel 0-7)", 0, 56},
	}
	return []*table.Table{latencyTable(m, probes)}
}

func runTable2(opts Options) []*table.Table {
	m := topology.ThunderX2()
	probes := []latencyProbe{
		{"eps (local)", 0, 0},
		{"L0 (within a socket)", 0, 1},
		{"L1 (across sockets)", 0, 32},
	}
	return []*table.Table{latencyTable(m, probes)}
}

func runTable3(opts Options) []*table.Table {
	m := topology.Kunpeng920()
	probes := []latencyProbe{
		{"eps (local)", 0, 0},
		{"L0 (within CCL)", 0, 1},
		{"L1 (within a SCCL)", 0, 4},
		{"L2 (across SCCL)", 0, 32},
	}
	return []*table.Table{latencyTable(m, probes)}
}

// ---- Figure 5: GCC/LLVM at 32 threads across machines ----

func runFigure5(opts Options) []*table.Table {
	tb := table.New("Figure 5: OpenMP barrier overhead at 32 threads (us)", "machine", "gcc", "llvm")
	for _, m := range topology.AllMachines() {
		tb.AddRow(m.Name,
			table.Cell(measure(m, 32, algo.GCC, opts)),
			table.Cell(measure(m, 32, algo.LLVM, opts)))
	}
	tb.AddNote("paper: ~2us on the Intel Xeon; up to 16us for GCC on ThunderX2 (an 8x slowdown)")
	return []*table.Table{tb}
}

// ---- Figure 6: GCC (a) and LLVM (b) thread sweeps ----

func runFigure6(opts Options) []*table.Table {
	var out []*table.Table
	for _, part := range []struct {
		label string
		f     algo.Factory
	}{{"(a) GNU GCC", algo.GCC}, {"(b) LLVM", algo.LLVM}} {
		threads := opts.threads(topology.Phytium2000())
		cols := []string{"machine"}
		for _, p := range threads {
			cols = append(cols, fmt.Sprintf("%dT", p))
		}
		tb := table.New(fmt.Sprintf("Figure 6%s barrier overhead (us)", part.label), cols...)
		for _, m := range topology.ARMMachines() {
			cells := []string{m.Name}
			for _, p := range threads {
				cells = append(cells, table.Cell(measure(m, p, part.f, opts)))
			}
			tb.AddRow(cells...)
		}
		out = append(out, tb)
	}
	return out
}

// ---- Figure 7: the seven algorithms ----

func runFigure7(opts Options) []*table.Table {
	var out []*table.Table
	// (a): SENSE alone, one row per machine (the paper separates it
	// because it dwarfs the others).
	threads := opts.threads(topology.Phytium2000())
	cols := []string{"machine"}
	for _, p := range threads {
		cols = append(cols, fmt.Sprintf("%dT", p))
	}
	senseTb := table.New("Figure 7(a): SENSE overhead (us)", cols...)
	for _, m := range topology.ARMMachines() {
		cells := []string{m.Name}
		for _, p := range threads {
			cells = append(cells, table.Cell(measure(m, p, algo.NewSense, opts)))
		}
		senseTb.AddRow(cells...)
	}
	out = append(out, senseTb)
	// (b)-(d): the other six algorithms per machine.
	panels := []string{"(b)", "(c)", "(d)"}
	for i, m := range topology.ARMMachines() {
		rows := namedFactories("dis", "cmb", "mcs", "tour", "stour", "dtour")
		out = append(out, sweepTable(
			fmt.Sprintf("Figure 7%s: barrier algorithms on %s (us)", panels[i], m.Name), m, rows, opts))
	}
	return out
}

// ---- Figure 11: arrival-phase variants ----

func runFigure11(opts Options) []*table.Table {
	var out []*table.Table
	panels := []string{"(a)", "(b)", "(c)"}
	for i, m := range topology.ARMMachines() {
		rows := []namedFactory{
			{name: "static f-way", factory: algo.STOUR},
			{name: "padding static f-way", factory: algo.STOURPadded},
			{name: "padding static 4-way", factory: algo.Static4WayPadded},
		}
		out = append(out, sweepTable(
			fmt.Sprintf("Figure 11%s: arrival-phase variants on %s (us)", panels[i], m.Name), m, rows, opts))
	}
	return out
}

// ---- Figure 12: wake-up strategies ----

func runFigure12(opts Options) []*table.Table {
	var out []*table.Table
	panels := []string{"(a)", "(b)", "(c)"}
	for i, m := range topology.ARMMachines() {
		rows := []namedFactory{
			{name: "global", factory: algo.OptimizedWith(algo.WakeGlobal)},
			{name: "binary tree", factory: algo.OptimizedWith(algo.WakeBinaryTree)},
			{name: "NUMA-aware tree", factory: algo.OptimizedWith(algo.WakeNUMATree)},
		}
		out = append(out, sweepTable(
			fmt.Sprintf("Figure 12%s: wake-up strategies on %s (us)", panels[i], m.Name), m, rows, opts))
	}
	return out
}

// ---- Figure 13: fan-in sweep at 64 threads ----

// Figure13FanIns are the fan-ins swept by the figure.
var Figure13FanIns = []int{2, 4, 8, 16, 32}

func runFigure13(opts Options) []*table.Table {
	cols := []string{"machine"}
	for _, f := range Figure13FanIns {
		cols = append(cols, fmt.Sprintf("f=%d", f))
	}
	tb := table.New("Figure 13: static f-way tournament fan-in sweep at 64 threads (us)", cols...)
	for _, m := range topology.ARMMachines() {
		cells := []string{m.Name}
		for _, f := range Figure13FanIns {
			cells = append(cells, table.Cell(measure(m, 64, algo.StaticFixedFanIn(f), opts)))
		}
		tb.AddRow(cells...)
	}
	tb.AddNote("the paper observes the best performance with a fan-in of 4 on all three platforms")
	return []*table.Table{tb}
}
