package experiments

import (
	"fmt"

	"armbarrier/internal/table"
	"armbarrier/model"
	"armbarrier/sim"
	"armbarrier/sim/algo"
	"armbarrier/topology"
)

func init() {
	All = append(All,
		Experiment{ID: "imbalance", Title: "Extension: barrier cost under load imbalance", Run: runImbalance},
		Experiment{ID: "toposched", Title: "Extension: topology-derived arrival schedule vs fixed fan-in 4", Run: runTopoSchedule},
	)
}

// runImbalance shows when the barrier choice matters: with balanced or
// mildly skewed work the optimized barrier's advantage over SENSE is
// large; once one straggler dominates the episode, synchronization
// cost hides behind it — the "interval between barriers" effect the
// paper's introduction describes, from the other side.
func runImbalance(opts Options) []*table.Table {
	var out []*table.Table
	skews := []float64{0, 500, 2000, 8000, 32000}
	for _, m := range topology.ARMMachines() {
		cols := []string{"algorithm"}
		for _, s := range skews {
			cols = append(cols, fmt.Sprintf("skew=%.0fns", s))
		}
		tb := table.New(fmt.Sprintf("Episode time under a rotating straggler on %s (us, 64 threads)", m.Name), cols...)
		for _, row := range []struct {
			name string
			f    algo.Factory
		}{{"sense", algo.NewSense}, {"optimized", algo.Optimized}} {
			cells := []string{row.name}
			for _, s := range skews {
				work := algo.SkewedWork(64, 100, 100+s)
				episode, _, err := algo.MeasureWithWork(m, 64, row.f, work,
					algo.MeasureOptions{Episodes: opts.episodes()})
				if err != nil {
					panic(err)
				}
				cells = append(cells, table.Cell(episode/1000))
			}
			tb.AddRow(cells...)
		}
		tb.AddNote("every thread computes 100ns; one rotating straggler computes 100ns+skew")
		out = append(out, tb)
	}
	return out
}

// runTopoSchedule compares the fixed fan-in 4 (the paper's choice)
// against an arrival schedule derived from the machine's own sharing
// hierarchy (cluster-sized first round).
func runTopoSchedule(opts Options) []*table.Table {
	tb := table.New("Topology-derived schedule vs fixed fan-in 4 (us, 64 threads)",
		"machine", "fixed f=4", "topology schedule", "schedule")
	for _, m := range topology.ARMMachines() {
		fixed := measure(m, 64, algo.Static4WayPadded, opts)
		sched := model.TopologySchedule(m, 64)
		topo := measure(m, 64, func(k *sim.Kernel, p int) algo.Barrier {
			return algo.NewFWay(k, p, algo.FWayConfig{
				Schedule:     model.TopologySchedule(m, p),
				Padded:       true,
				Wakeup:       algo.WakeGlobal,
				ClusterMajor: true,
				Name:         "topo-sched",
			})
		}, opts)
		tb.AddRow(m.Name, table.Cell(fixed), table.Cell(topo), fmt.Sprintf("%v", sched))
	}
	tb.AddNote("both use padded flags and the global wake-up; only the arrival grouping differs")
	return []*table.Table{tb}
}
