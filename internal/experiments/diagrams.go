package experiments

import (
	"fmt"

	"armbarrier/internal/table"
	"armbarrier/model"
	"armbarrier/sim"
	"armbarrier/sim/algo"
	"armbarrier/topology"
)

// The paper's Figures 8, 9 and 10 are conceptual diagrams; these
// experiments reproduce their quantitative content: the memory
// operations at one barrier point for packed vs padded flags (Fig. 8),
// the cross-cluster cacheline movements of fan-in 3 vs 4 arrival trees
// on Phytium (Fig. 9), and the remote-edge counts of the binary vs
// NUMA-aware wake-up trees on ThunderX2 (Fig. 10).

func init() {
	All = append(All,
		Experiment{ID: "fig8", Title: "Figure 8: ops at one barrier point, packed vs padded flags", Run: runFigure8},
		Experiment{ID: "fig9", Title: "Figure 9: cross-cluster edges of fan-in 3 vs 4 arrival trees (9 threads, Phytium)", Run: runFigure9},
		Experiment{ID: "fig10", Title: "Figure 10: remote edges of binary vs NUMA-aware wake-up trees (ThunderX2)", Run: runFigure10},
	)
}

// runFigure8 recreates the figure's exact scenario: node 0 is the
// parent of nodes 1-3; node 3 lives in a different core cluster. One
// barrier episode is traced and the resulting operation mix reported
// for the packed and the padded flag layout.
func runFigure8(opts Options) []*table.Table {
	m := topology.Kunpeng920() // clusters of 4, as in the figure
	tb := table.New("Figure 8: one 4-thread barrier point on kunpeng920 (node 3 in another cluster)",
		"layout", "remote stores", "remote loads", "local loads", "episode ns")
	for _, padded := range []bool{false, true} {
		stats, ns := traceBarrierPoint(m, padded, opts)
		layout := "packed (shared line)"
		if padded {
			layout = "padded (line per flag)"
		}
		tb.AddRow(layout,
			table.CellInt(int(stats.RemoteStores)),
			table.CellInt(int(stats.RemoteLoads)),
			table.CellInt(int(stats.LocalLoads)),
			table.Cell(ns))
	}
	tb.AddNote("one traced episode after warm-up; threads 0-2 share a cluster, thread 3 does not")
	return []*table.Table{tb}
}

// traceBarrierPoint measures one steady-state episode of a single
// 4-way group by differencing two runs (N and N+1 episodes) — exact
// per-episode op attribution on the deterministic simulator.
func traceBarrierPoint(m *topology.Machine, padded bool, opts Options) (sim.Stats, float64) {
	run := func(episodes int) (sim.Stats, float64) {
		place, err := topology.Custom(m, []int{0, 1, 2, 4}) // 3 intra + 1 cross
		if err != nil {
			panic(err)
		}
		k, err := sim.New(sim.Config{Machine: m, Placement: place})
		if err != nil {
			panic(err)
		}
		b := algo.NewFWay(k, 4, algo.FWayConfig{
			Schedule: []int{4},
			Padded:   padded,
			Wakeup:   algo.WakeGlobal,
		})
		k.Run(func(t *sim.Thread) {
			for e := 0; e < episodes; e++ {
				b.Wait(t)
			}
		})
		return k.Stats(), k.MaxTime()
	}
	const warm = 4
	s1, t1 := run(warm)
	s2, t2 := run(warm + 1)
	diff := sim.Stats{
		Loads:        s2.Loads - s1.Loads,
		LocalLoads:   s2.LocalLoads - s1.LocalLoads,
		RemoteLoads:  s2.RemoteLoads - s1.RemoteLoads,
		Stores:       s2.Stores - s1.Stores,
		RemoteStores: s2.RemoteStores - s1.RemoteStores,
		Atomics:      s2.Atomics - s1.Atomics,
	}
	return diff, t2 - t1
}

// runFigure9 counts intra- vs cross-cluster parent-child edges of the
// 9-thread arrival trees with fan-in 3 (balanced) and fan-in 4 (the
// paper's recommendation) on Phytium 2000+, and measures both.
func runFigure9(opts Options) []*table.Table {
	m := topology.Phytium2000()
	const P = 9
	tb := table.New("Figure 9: 9-thread arrival trees on phytium2000",
		"fan-in", "intra-cluster edges", "cross-cluster edges", "simulated ns")
	for _, f := range []int{3, 4} {
		intra, cross := arrivalEdgeCounts(m, P, f)
		ns := algo.MustMeasure(m, P, func(k *sim.Kernel, p int) algo.Barrier {
			return algo.NewFWay(k, p, algo.FWayConfig{
				Schedule: model.FixedFanInSchedule(p, f),
				Padded:   true,
				Wakeup:   algo.WakeGlobal,
				Name:     fmt.Sprintf("stour%d", f),
			})
		}, algo.MeasureOptions{Episodes: opts.episodes()})
		tb.AddRow(table.CellInt(f), table.CellInt(intra), table.CellInt(cross), table.Cell(ns))
	}
	tb.AddNote("fan-in 3 balances the tree but splits core groups (N_c=4), adding L1 movements")
	return []*table.Table{tb}
}

// arrivalEdgeCounts walks the static tournament structure counting
// loser->winner signalling edges by locality (threads pinned compact).
func arrivalEdgeCounts(m *topology.Machine, P, f int) (intra, cross int) {
	sched := model.FixedFanInSchedule(P, f)
	stride := 1
	for _, fr := range sched {
		for rank := 0; rank < P; rank += stride {
			pidx := rank / stride
			if pidx%fr == 0 {
				continue // winner
			}
			winner := rank - (pidx%fr)*stride
			if m.SameCluster(rank, winner) { // compact: thread == core
				intra++
			} else {
				cross++
			}
		}
		// Only current-round participants advance.
		stride *= fr
	}
	return intra, cross
}

// runFigure10 reports the remote (cross-socket) edge counts of the two
// wake-up trees on ThunderX2 at 64 threads, the exact comparison of
// the paper's Figure 10, plus their measured wake-up cost.
func runFigure10(opts Options) []*table.Table {
	m := topology.ThunderX2()
	const P = 64
	tb := table.New("Figure 10: wake-up trees on thunderx2 (64 threads)",
		"tree", "total edges", "cross-socket edges", "notification ns")
	for _, row := range []struct {
		name     string
		children func(n int) []int
		wake     algo.WakeupKind
	}{
		{"binary", func(n int) []int { return model.BinaryTreeChildren(n, P) }, algo.WakeBinaryTree},
		{"NUMA-aware", func(n int) []int { return model.NUMATreeChildren(n, P, m.ClusterSize) }, algo.WakeNUMATree},
	} {
		total, cross := 0, 0
		for n := 0; n < P; n++ {
			for _, c := range row.children(n) {
				total++
				if !m.SameCluster(n, c) {
					cross++
				}
			}
		}
		pb, err := algo.MeasurePhases(m, P, algo.FWayConfig{
			Schedule: model.FixedFanInSchedule(P, 4),
			Padded:   true,
			Wakeup:   row.wake,
		}, algo.MeasureOptions{Episodes: opts.episodes()})
		if err != nil {
			panic(err)
		}
		tb.AddRow(row.name, table.CellInt(total), table.CellInt(cross), table.Cell(pb.NotificationNs))
	}
	tb.AddNote("the paper: binary tree's cross-socket edges are about half of all edges; the NUMA tree needs one")
	return []*table.Table{tb}
}
