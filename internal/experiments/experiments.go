// Package experiments defines one driver per table and figure of the
// paper's evaluation. Each driver runs the relevant barrier
// configurations on the cache simulator and renders the same rows or
// series the paper reports. The drivers are shared by cmd/barriersim,
// the top-level benchmarks, and the integration tests that pin the
// qualitative shape of every result.
package experiments

import (
	"fmt"
	"sort"

	"armbarrier/internal/table"
	"armbarrier/model"
	"armbarrier/sim"
	"armbarrier/sim/algo"
	"armbarrier/topology"
)

// Options tunes experiment execution.
type Options struct {
	// Episodes is the number of timed barrier episodes per data point
	// (default 10). The simulator is deterministic, so more episodes
	// tighten pipelining effects rather than noise.
	Episodes int
	// Threads overrides the default thread sweep
	// {1,2,4,8,12,16,24,32,48,64}.
	Threads []int
}

func (o Options) episodes() int {
	if o.Episodes <= 0 {
		return 10
	}
	return o.Episodes
}

func (o Options) threads(m *topology.Machine) []int {
	sweep := o.Threads
	if sweep == nil {
		sweep = []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64}
	}
	out := make([]int, 0, len(sweep))
	for _, p := range sweep {
		if p >= 1 && p <= m.Cores {
			out = append(out, p)
		}
	}
	return out
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the short name used on the command line ("fig7", "tab4").
	ID string
	// Title describes the paper artifact.
	Title string
	// Run executes the experiment and returns its result tables.
	Run func(opts Options) []*table.Table
}

// All lists every experiment in paper order.
var All = []Experiment{
	{ID: "tab1", Title: "Table I: core-to-core latencies on Phytium 2000+ (ns)", Run: runTable1},
	{ID: "tab2", Title: "Table II: core-to-core latencies on ThunderX2 (ns)", Run: runTable2},
	{ID: "tab3", Title: "Table III: core-to-core latencies on Kunpeng920 (ns)", Run: runTable3},
	{ID: "fig5", Title: "Figure 5: GCC and LLVM barrier overhead at 32 threads (us)", Run: runFigure5},
	{ID: "fig6", Title: "Figure 6: GCC and LLVM barrier overhead vs threads (us)", Run: runFigure6},
	{ID: "fig7", Title: "Figure 7: seven barrier algorithms vs threads (us)", Run: runFigure7},
	{ID: "fig11", Title: "Figure 11: arrival-phase variants of the static f-way tournament (us)", Run: runFigure11},
	{ID: "fig12", Title: "Figure 12: wake-up strategies (us)", Run: runFigure12},
	{ID: "fig13", Title: "Figure 13: fan-in sweep at 64 threads (us)", Run: runFigure13},
	{ID: "tab4", Title: "Table IV: speedup of the optimized barrier", Run: runTable4},
	{ID: "placement", Title: "Extension: pinning policy vs cluster-aware grouping (us)", Run: runPlacement},
	{ID: "dispad", Title: "Extension: dissemination flag padding ablation (us)", Run: runDisPadding},
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// IDs returns all experiment IDs in paper order.
func IDs() []string {
	ids := make([]string, len(All))
	for i, e := range All {
		ids[i] = e.ID
	}
	return ids
}

// measure runs one simulated EPCC measurement and returns microseconds
// (the unit of every figure in the paper).
func measure(m *topology.Machine, threads int, f algo.Factory, opts Options) float64 {
	return algo.MustMeasure(m, threads, f, algo.MeasureOptions{Episodes: opts.episodes()}) / 1000.0
}

// MeasureUs exposes the per-point measurement for benchmarks and tests.
func MeasureUs(m *topology.Machine, threads int, f algo.Factory, opts Options) float64 {
	return measure(m, threads, f, opts)
}

// sweepTable builds one table with a column per thread count and a row
// per (name, factory) pair.
func sweepTable(title string, m *topology.Machine, rows []namedFactory, opts Options) *table.Table {
	threads := opts.threads(m)
	cols := []string{"algorithm"}
	for _, p := range threads {
		cols = append(cols, fmt.Sprintf("%dT", p))
	}
	tb := table.New(title, cols...)
	for _, r := range rows {
		cells := []string{r.name}
		for _, p := range threads {
			cells = append(cells, table.Cell(measure(m, p, r.factory, opts)))
		}
		tb.AddRow(cells...)
	}
	tb.AddNote("simulated EPCC overhead in us per barrier on %s", m.Name)
	return tb
}

type namedFactory struct {
	name    string
	factory algo.Factory
}

func namedFactories(names ...string) []namedFactory {
	rows := make([]namedFactory, len(names))
	for i, n := range names {
		f, err := algo.ByName(n)
		if err != nil {
			panic(err)
		}
		rows[i] = namedFactory{name: n, factory: f}
	}
	return rows
}

// BestExisting returns the cheapest of the paper's seven algorithms at
// the given thread count — the "state-of-the-art" row of Table IV.
func BestExisting(m *topology.Machine, threads int, opts Options) (string, float64) {
	bestName, best := "", 0.0
	for _, n := range algo.PaperAlgorithms {
		v := measure(m, threads, algo.Registry[n], opts)
		if bestName == "" || v < best {
			bestName, best = n, v
		}
	}
	return bestName, best
}

func runTable4(opts Options) []*table.Table {
	tb := table.New("Table IV: speedup of the optimized barrier (64 threads)",
		"baseline", "phytium2000", "thunderx2", "kunpeng920", "geomean")
	machines := topology.ARMMachines()
	type row struct {
		name   string
		values []float64
	}
	rows := []row{{name: "gcc"}, {name: "llvm"}, {name: "state-of-the-art"}}
	var bestNames []string
	for _, m := range machines {
		opt := measure(m, 64, algo.Optimized, opts)
		gcc := measure(m, 64, algo.GCC, opts)
		llvm := measure(m, 64, algo.LLVM, opts)
		bestName, best := BestExisting(m, 64, opts)
		bestNames = append(bestNames, fmt.Sprintf("%s:%s", m.Name, bestName))
		rows[0].values = append(rows[0].values, gcc/opt)
		rows[1].values = append(rows[1].values, llvm/opt)
		rows[2].values = append(rows[2].values, best/opt)
	}
	for _, r := range rows {
		cells := []string{r.name}
		prod := 1.0
		for _, v := range r.values {
			cells = append(cells, table.CellX(v))
			prod *= v
		}
		geo := cubeRoot(prod)
		cells = append(cells, table.CellX(geo))
		tb.AddRow(cells...)
	}
	tb.AddNote("state-of-the-art = best of the seven evaluated algorithms per machine (%v)", bestNames)
	tb.AddNote("paper reports geomeans of 12.6x (GCC), 4.7x (LLVM) and 1.6x (state-of-the-art)")
	return []*table.Table{tb}
}

func cubeRoot(x float64) float64 {
	// x > 0 for speedups; avoid importing math for one call site chain.
	lo, hi := 0.0, x+1
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mid*mid*mid < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func runPlacement(opts Options) []*table.Table {
	// Extension study: how much does the cluster-aware grouping of the
	// optimized barrier recover when threads are pinned scattered
	// across clusters instead of compactly?
	var out []*table.Table
	for _, m := range topology.ARMMachines() {
		tb := table.New(fmt.Sprintf("Pinning sensitivity on %s (us, 64 threads)", m.Name),
			"configuration", "compact", "scatter")
		for _, cfg := range []struct {
			name         string
			clusterMajor bool
		}{{"optimized (cluster-aware ranks)", true}, {"optimized (naive ranks)", false}} {
			cells := []string{cfg.name}
			for _, policy := range []string{"compact", "scatter"} {
				place, err := placementFor(m, 64, policy)
				if err != nil {
					panic(err)
				}
				f := optimizedWithRanks(cfg.clusterMajor)
				v := algo.MustMeasure(m, 64, f, algo.MeasureOptions{
					Episodes: opts.episodes(), Placement: place,
				}) / 1000.0
				cells = append(cells, table.Cell(v))
			}
			tb.AddRow(cells...)
		}
		out = append(out, tb)
	}
	return out
}

func placementFor(m *topology.Machine, threads int, policy string) (topology.Placement, error) {
	switch policy {
	case "compact":
		return topology.Compact(m, threads)
	case "scatter":
		return topology.Scatter(m, threads)
	}
	return nil, fmt.Errorf("experiments: unknown placement %q", policy)
}

func optimizedWithRanks(clusterMajor bool) algo.Factory {
	return func(k *sim.Kernel, p int) algo.Barrier {
		wake := algo.WakeNUMATree
		if model.PredictWakeup(k.Machine(), p) == "global" {
			wake = algo.WakeGlobal
		}
		return algo.NewFWay(k, p, algo.FWayConfig{
			Schedule:     model.FixedFanInSchedule(p, 4),
			Padded:       true,
			Wakeup:       wake,
			ClusterMajor: clusterMajor,
			Name:         "optimized",
		})
	}
}

func runDisPadding(opts Options) []*table.Table {
	var out []*table.Table
	for _, m := range topology.ARMMachines() {
		rows := []namedFactory{
			{name: "dis (packed rows)", factory: algo.NewDissemination},
			{name: "dis (padded flags)", factory: algo.NewDisseminationPadded},
		}
		out = append(out, sweepTable(
			fmt.Sprintf("Dissemination flag layout on %s (us)", m.Name), m, rows, opts))
	}
	return out
}

// SortedThreadColumns is a helper for tests: parse the "NT" headers of
// a sweep table back into thread counts.
func SortedThreadColumns(tb *table.Table) []int {
	var out []int
	for _, c := range tb.Columns[1:] {
		var p int
		if _, err := fmt.Sscanf(c, "%dT", &p); err == nil {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}
