package faultinject

import (
	"context"
	"sync"
	"testing"
	"time"

	"armbarrier/fabric"
)

// Fabric wedge matrix: the multi-group counterpart of the barrier
// wedge tests. One participant of one group stalls; the fabric's
// watchdog must report exactly that group (naming the straggler, since
// the group is identity-tracked), sibling groups sharing the same
// shard must keep completing rounds the whole time, and releasing the
// straggler must clear the stall and complete the wedged round. Both
// engines are covered; run under -race this doubles as the isolation
// race check.
func TestFabricWedgedGroupIsolated(t *testing.T) {
	const (
		p         = 4
		straggler = 2
		siblings  = 8
		rounds    = 30
		deadline  = 15 * time.Millisecond
	)
	for _, mode := range []struct {
		name   string
		parked bool
	}{{"async", false}, {"parked", true}} {
		t.Run(mode.name, func(t *testing.T) {
			f := fabric.New(fabric.Config{
				Shards:        1, // every group in one shard: isolation must not depend on sharding luck
				StallDeadline: deadline,
				ParkedBudget:  30 * time.Second,
			})
			defer f.Close()
			ctx := context.Background()

			wedged, err := f.Group("wedged", fabric.GroupConfig{
				Participants: p, Track: !mode.parked, Parked: mode.parked,
			})
			if err != nil {
				t.Fatal(err)
			}

			// The wedged group's round 0: everyone arrives except the
			// straggler. The arrivals are irrevocable, so the round hangs
			// open until the straggler shows.
			var wedgedChs []<-chan fabric.Outcome
			for id := 0; id < p; id++ {
				if id == straggler {
					continue
				}
				wedgedChs = append(wedgedChs, wedged.ArriveAs(ctx, id))
			}

			// Sibling groups grind rounds in the same shard throughout.
			var wg sync.WaitGroup
			sibErrs := make([]error, siblings)
			for s := 0; s < siblings; s++ {
				g, err := f.Group("sib"+string(rune('a'+s)), fabric.GroupConfig{
					Participants: 2, Parked: mode.parked,
				})
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(s int, g *fabric.Group) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						a, b := g.Arrive(ctx), g.Arrive(ctx)
						for _, ch := range []<-chan fabric.Outcome{a, b} {
							if o := <-ch; o.Err != nil {
								sibErrs[s] = o.Err
								return
							}
						}
					}
				}(s, g)
			}

			// The watchdog must converge on exactly one stall: the wedged
			// group, with the straggler named (tracked async groups only —
			// the parked engine is anonymous by construction).
			var st fabric.Stall
			giveUp := time.Now().Add(20 * time.Second)
			for {
				stalls := f.Check()
				if len(stalls) == 1 && stalls[0].Group == "wedged" && stalls[0].Arrived == p-1 {
					st = stalls[0]
					break
				}
				if len(stalls) > 1 {
					t.Fatalf("healthy siblings reported stalled: %+v", stalls)
				}
				if time.Now().After(giveUp) {
					t.Fatalf("watchdog never isolated the wedged group; last: %+v", stalls)
				}
				time.Sleep(time.Millisecond)
			}
			if st.Age < deadline {
				t.Errorf("stall reported at age %v, before the %v deadline", st.Age, deadline)
			}
			if !mode.parked {
				if len(st.Missing) != 1 || st.Missing[0] != straggler {
					t.Errorf("Missing = %v, want [%d]", st.Missing, straggler)
				}
			}

			// Siblings must have made progress while the stall was live —
			// they finish all their rounds without error.
			wg.Wait()
			for s, err := range sibErrs {
				if err != nil {
					t.Errorf("sibling %d: %v", s, err)
				}
			}

			// Release the straggler: the wedged round completes for all P
			// and the stall clears.
			var last <-chan fabric.Outcome
			if mode.parked {
				last = wedged.Arrive(ctx)
			} else {
				last = wedged.ArriveAs(ctx, straggler)
			}
			for _, ch := range append(wedgedChs, last) {
				select {
				case o := <-ch:
					if o.Err != nil || o.Round != 0 {
						t.Fatalf("wedged round outcome %+v, want round 0", o)
					}
				case <-time.After(30 * time.Second):
					t.Fatal("wedged round never completed after release")
				}
			}
			clearBy := time.Now().Add(5 * time.Second)
			for len(f.Check()) != 0 {
				if time.Now().After(clearBy) {
					t.Fatal("stall persists after the straggler was released")
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
}
