package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"

	"armbarrier/barrier"
)

// Phaser rows of the wedge matrix: dynamic membership changes the two
// classic recovery stories. A wedged round no longer needs the
// straggler to arrive — the straggler can DEREGISTER and the round
// resolves without it (the absorbing deregistration); and a peer's
// timeout poisons the phaser, which must refuse new registrations
// rather than admit parties into a barrier that can no longer complete
// a round.

// TestPhaserDeregisterWhileWedgedMatrix: for every wait policy, three
// of four parties wait, the watchdog names the absent fourth, and the
// fourth deregisters instead of arriving — the wedge resolves, and a
// clean next round at the reduced membership proves nothing was
// poisoned.
func TestPhaserDeregisterWhileWedgedMatrix(t *testing.T) {
	const (
		capacity = 8
		members  = 4
		absent   = 3
		deadline = 25 * time.Millisecond
		budget   = 30 * time.Second // failure bound: errors, not hangs
	)
	for pname, pol := range policies() {
		t.Run(pname, func(t *testing.T) {
			ph := barrier.NewPhaser(capacity, barrier.WithWaitPolicy(pol))
			parties := make([]*barrier.Party, members)
			for range parties {
				p, err := ph.Register()
				if err != nil {
					t.Fatal(err)
				}
				parties[p.ID()] = p
			}
			wd := barrier.NewWatchdog(ph, barrier.WatchdogConfig{Deadline: deadline})

			errs := make([]error, members)
			var wg sync.WaitGroup
			for id := 0; id < members; id++ {
				if id == absent {
					continue
				}
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					errs[id] = wd.WaitDeadline(id, budget)
				}(id)
			}

			// The watchdog must name exactly the absent member — not the
			// four never-registered capacity slots (membership-aware
			// Missing), and not the waiting peers.
			var st barrier.Stall
			giveUp := time.Now().Add(20 * time.Second)
			for {
				var stalled bool
				if st, stalled = wd.Check(); stalled &&
					len(st.Missing) == 1 && len(st.Waiting) == members-1 {
					break
				}
				if time.Now().After(giveUp) {
					t.Fatalf("watchdog never reported the stall; last: %+v", st)
				}
				time.Sleep(time.Millisecond)
			}
			if st.Missing[0] != absent {
				t.Errorf("Missing = %v, want [%d]", st.Missing, absent)
			}

			// Recovery by membership change: the absent party leaves, its
			// pending arrival is absorbed, the round resolves.
			parties[absent].Deregister()
			wg.Wait()
			for id, err := range errs {
				if err != nil {
					t.Errorf("participant %d: %v", id, err)
				}
			}
			if got := ph.Phase(); got != 1 {
				t.Errorf("Phase() = %d after absorbed round, want 1", got)
			}

			// Clean round at the reduced membership: not poisoned.
			for id := 0; id < members-1; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					errs[id] = wd.WaitDeadline(id, budget)
				}(id)
			}
			wg.Wait()
			for id := 0; id < members-1; id++ {
				if errs[id] != nil {
					t.Errorf("clean round, participant %d: %v", id, errs[id])
				}
			}
			if _, stalled := wd.Check(); stalled {
				t.Error("stall persists after the deregistration resolved the wedge")
			}
		})
	}
}

// TestPhaserRegisterDuringTimeout: a peer's WaitDeadline timeout
// poisons the phaser; a registration racing (or following) that
// timeout must be refused with ErrPhaserPoisoned — admitting a new
// party into a barrier whose rounds can no longer complete would just
// grow the wedge.
func TestPhaserRegisterDuringTimeout(t *testing.T) {
	ph := barrier.NewPhaser(4)
	if _, err := ph.Register(); err != nil {
		t.Fatal(err)
	}
	if _, err := ph.Register(); err != nil {
		t.Fatal(err)
	}
	// Party 1 never arrives; party 0's bounded wait fires.
	err := ph.WaitDeadline(0, 30*time.Millisecond)
	if !errors.Is(err, barrier.ErrWaitTimeout) {
		t.Fatalf("WaitDeadline = %v, want ErrWaitTimeout", err)
	}
	if !ph.Poisoned() {
		t.Fatal("phaser not poisoned after timeout")
	}
	if _, err := ph.Register(); !errors.Is(err, barrier.ErrPhaserPoisoned) {
		t.Fatalf("Register on poisoned phaser = %v, want ErrPhaserPoisoned", err)
	}
}
