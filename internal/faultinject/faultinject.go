// Package faultinject perturbs barrier participants on purpose: it
// wraps any barrier.Barrier and makes chosen participants arrive late
// (Delay), arrive never until released (Stall), skip an episode
// entirely (Drop), or panic on arrival (Panic). The robustness layer —
// bounded waits, the episode watchdog, panic-safe teams — is only
// trustworthy if it is exercised against the failures it claims to
// handle; CNA-lock verification work found liveness bugs in hand-tuned
// sync structures only by systematically perturbing schedules, and this
// package is the repository's lightweight version of that discipline.
// It is internal: a deliberate wedge is a test instrument, not an API.
package faultinject

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"armbarrier/barrier"
)

// Kind enumerates the injectable faults.
type Kind uint8

const (
	// Delay makes the participant sleep before arriving.
	Delay Kind = iota
	// Stall blocks the participant before arrival until Release; with a
	// non-zero Fault.Delay it un-stalls by itself after that long.
	Stall
	// Drop makes the participant skip the episode entirely: it blocks
	// like Stall but never arrives at the inner barrier even when
	// released. The episode can then only complete if the barrier is
	// replaced — Drop is how a test creates a permanently missing
	// participant without leaking a goroutine.
	Drop
	// Panic makes the participant panic instead of arriving.
	Panic
)

// String implements fmt.Stringer with the names the -fault flag uses.
func (k Kind) String() string {
	switch k {
	case Delay:
		return "delay"
	case Stall:
		return "stall"
	case Drop:
		return "drop"
	case Panic:
		return "panic"
	}
	return "fault?"
}

// ParseKind parses a fault kind name as printed by String.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "delay":
		return Delay, nil
	case "stall":
		return Stall, nil
	case "drop":
		return Drop, nil
	case "panic":
		return Panic, nil
	}
	return 0, fmt.Errorf("faultinject: unknown fault kind %q (have delay, stall, drop, panic)", s)
}

// Fault is one injected failure: participant ID misbehaves (per Kind)
// on its Round-th arrival at the wrapped barrier, counting from 0.
// Each fault fires once.
type Fault struct {
	ID    int
	Round uint64
	Kind  Kind
	// Delay is the sleep for Delay faults and the optional self-release
	// timeout for Stall faults (0 = stall until Release).
	Delay time.Duration
}

// String formats the fault the way the -fault flag spells it.
func (f Fault) String() string {
	if f.Delay > 0 {
		return fmt.Sprintf("%d@%d:%s:%v", f.ID, f.Round, f.Kind, f.Delay)
	}
	return fmt.Sprintf("%d@%d:%s", f.ID, f.Round, f.Kind)
}

// ParseFault parses a fault spec as the barrierbench -fault flag
// spells it: "id@round:kind[:duration]", e.g. "2@5:stall" or
// "0@0:delay:3ms". Round counts a participant's arrivals from 0.
func ParseFault(s string) (Fault, error) {
	var f Fault
	var kindDur string
	if _, err := fmt.Sscanf(s, "%d@%d:%s", &f.ID, &f.Round, &kindDur); err != nil {
		return Fault{}, fmt.Errorf("faultinject: fault spec %q is not id@round:kind[:duration]", s)
	}
	kind := kindDur
	if i := strings.IndexByte(kindDur, ':'); i >= 0 {
		kind = kindDur[:i]
		d, err := time.ParseDuration(kindDur[i+1:])
		if err != nil {
			return Fault{}, fmt.Errorf("faultinject: fault spec %q: %w", s, err)
		}
		f.Delay = d
	}
	k, err := ParseKind(kind)
	if err != nil {
		return Fault{}, fmt.Errorf("faultinject: fault spec %q: %w", s, err)
	}
	f.Kind = k
	if f.ID < 0 {
		return Fault{}, fmt.Errorf("faultinject: fault spec %q: negative participant", s)
	}
	if f.Kind == Delay && f.Delay <= 0 {
		return Fault{}, fmt.Errorf("faultinject: fault spec %q: delay needs a duration", s)
	}
	return f, nil
}

// ParseFaults parses a comma-separated list of fault specs.
func ParseFaults(s string) ([]Fault, error) {
	if s == "" {
		return nil, nil
	}
	var fs []Fault
	for _, part := range strings.Split(s, ",") {
		f, err := ParseFault(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	return fs, nil
}

// paddedRound is a participant's owner-only arrival counter.
type paddedRound struct {
	n uint64
	_ [barrier.CacheLineSize - 8]byte
}

// Injector wraps a barrier and applies the configured faults. Wrap the
// Injector outermost — participant → Injector → Watchdog → barrier — so
// a watchdog under test never sees the faulted arrival and genuinely
// has to detect the absence.
type Injector struct {
	inner    barrier.Barrier
	rounds   []paddedRound
	faults   map[int]map[uint64]Fault
	release  chan struct{}
	once     sync.Once
	injected atomic.Uint64
}

// Wrap builds an Injector around b. It panics on a fault naming a
// participant outside b's range or two faults for the same participant
// and round.
func Wrap(b barrier.Barrier, faults ...Fault) *Injector {
	p := b.Participants()
	m := make(map[int]map[uint64]Fault)
	for _, f := range faults {
		if f.ID < 0 || f.ID >= p {
			panic(fmt.Sprintf("faultinject: fault %v names participant outside [0,%d)", f, p))
		}
		if _, dup := m[f.ID][f.Round]; dup {
			panic(fmt.Sprintf("faultinject: duplicate fault for participant %d round %d", f.ID, f.Round))
		}
		if m[f.ID] == nil {
			m[f.ID] = make(map[uint64]Fault)
		}
		m[f.ID][f.Round] = f
	}
	return &Injector{
		inner:   b,
		rounds:  make([]paddedRound, p),
		faults:  m,
		release: make(chan struct{}),
	}
}

// Name implements Barrier.
func (in *Injector) Name() string { return in.inner.Name() + "+fault" }

// Participants implements Barrier.
func (in *Injector) Participants() int { return in.inner.Participants() }

// Inner returns the wrapped barrier.
func (in *Injector) Inner() barrier.Barrier { return in.inner }

// Injected reports how many faults have fired.
func (in *Injector) Injected() uint64 { return in.injected.Load() }

// Release un-stalls every stalled participant and every future Stall or
// Drop fault. Idempotent.
func (in *Injector) Release() {
	in.once.Do(func() { close(in.release) })
}

// take returns the fault due for participant id's current arrival, if
// any, and advances its round counter.
func (in *Injector) take(id int) (Fault, bool) {
	r := in.rounds[id].n
	in.rounds[id].n++
	f, ok := in.faults[id][r]
	if ok {
		in.injected.Add(1)
	}
	return f, ok
}

// Wait implements Barrier, applying any fault due this round. A Stall
// with no self-release delay blocks until Release; a Drop returns
// without arriving at the inner barrier at all.
func (in *Injector) Wait(id int) {
	if f, ok := in.take(id); ok {
		switch f.Kind {
		case Delay:
			time.Sleep(f.Delay)
		case Stall:
			in.await(f, nil)
		case Drop:
			in.await(f, nil)
			return
		case Panic:
			panic(fmt.Sprintf("faultinject: injected panic: participant %d round %d", f.ID, f.Round))
		}
	}
	in.inner.Wait(id)
}

// WaitDeadline implements barrier.DeadlineWaiter, forwarding to the
// wrapped barrier (which must implement it) with whatever budget the
// fault has not consumed. A Stall or Drop that outlives the budget
// reports the same *barrier.TimeoutError a wedged wait would.
func (in *Injector) WaitDeadline(id int, timeout time.Duration) error {
	dw, ok := in.inner.(barrier.DeadlineWaiter)
	if !ok {
		return fmt.Errorf("faultinject: %s does not implement DeadlineWaiter", in.inner.Name())
	}
	start := time.Now()
	if f, ok := in.take(id); ok {
		budget := time.NewTimer(timeout)
		defer budget.Stop()
		switch f.Kind {
		case Delay:
			select {
			case <-time.After(f.Delay):
			case <-budget.C:
				return &barrier.TimeoutError{Barrier: in.Name(), ID: id, Timeout: timeout}
			}
		case Stall:
			if !in.await(f, budget.C) {
				return &barrier.TimeoutError{Barrier: in.Name(), ID: id, Timeout: timeout}
			}
		case Drop:
			if !in.await(f, budget.C) {
				return &barrier.TimeoutError{Barrier: in.Name(), ID: id, Timeout: timeout}
			}
			return nil
		case Panic:
			panic(fmt.Sprintf("faultinject: injected panic: participant %d round %d", f.ID, f.Round))
		}
	}
	remaining := timeout - time.Since(start)
	if remaining <= 0 {
		remaining = time.Nanosecond
	}
	return dw.WaitDeadline(id, remaining)
}

// await blocks on the fault's release condition: Release, the fault's
// own self-release delay (if any), or the caller's budget (if any).
// It reports false when the budget expired first.
func (in *Injector) await(f Fault, budget <-chan time.Time) bool {
	var selfRelease <-chan time.Time
	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		selfRelease = t.C
	}
	select {
	case <-in.release:
		return true
	case <-selfRelease:
		return true
	case <-budget:
		return false
	}
}

// EnableSpinCounts implements barrier.SpinCounter by delegation.
func (in *Injector) EnableSpinCounts() {
	if sc, ok := in.inner.(barrier.SpinCounter); ok {
		sc.EnableSpinCounts()
	}
}

// SpinCounts implements barrier.SpinCounter by delegation.
func (in *Injector) SpinCounts(id int) (spins, yields uint64) {
	if sc, ok := in.inner.(barrier.SpinCounter); ok {
		return sc.SpinCounts(id)
	}
	return 0, 0
}

// ParkCounts implements barrier.ParkCounter by delegation.
func (in *Injector) ParkCounts(id int) (parks, wakes uint64) {
	if pc, ok := in.inner.(barrier.ParkCounter); ok {
		return pc.ParkCounts(id)
	}
	return 0, 0
}

var (
	_ barrier.Barrier        = (*Injector)(nil)
	_ barrier.DeadlineWaiter = (*Injector)(nil)
	_ barrier.SpinCounter    = (*Injector)(nil)
	_ barrier.ParkCounter    = (*Injector)(nil)
)
