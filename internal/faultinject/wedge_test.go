package faultinject

import (
	"sync"
	"testing"
	"time"

	"armbarrier/barrier"
)

// Wedge matrix: the robustness acceptance test. For every barrier
// algorithm × wait policy, a fault-injected missing participant must be
// (a) detected by the watchdog — with the right straggler ID reported —
// and (b) survivable: the peers' bounded waits hold, the straggler's
// release completes the episode, and a further clean round proves the
// barrier was not poisoned. The wrapping order is participant →
// Injector → Watchdog → barrier, so the watchdog never sees the
// faulted arrival and genuinely has to detect the absence.

// algorithms enumerates every option-accepting barrier constructor,
// mirroring the barrier package's own wait-policy matrix.
func algorithms() map[string]func(p int, opts ...barrier.Option) barrier.Barrier {
	return map[string]func(p int, opts ...barrier.Option) barrier.Barrier{
		"central":       func(p int, o ...barrier.Option) barrier.Barrier { return barrier.NewCentral(p, o...) },
		"dissemination": func(p int, o ...barrier.Option) barrier.Barrier { return barrier.NewDissemination(p, o...) },
		"combining2":    func(p int, o ...barrier.Option) barrier.Barrier { return barrier.NewCombining(p, 2, o...) },
		"mcs":           func(p int, o ...barrier.Option) barrier.Barrier { return barrier.NewMCS(p, o...) },
		"tournament":    func(p int, o ...barrier.Option) barrier.Barrier { return barrier.NewTournament(p, o...) },
		"hyper":         func(p int, o ...barrier.Option) barrier.Barrier { return barrier.NewHyper(p, o...) },
		"hyper2":        func(p int, o ...barrier.Option) barrier.Barrier { return barrier.NewHyperBranch(p, 2, o...) },
		"stour":         func(p int, o ...barrier.Option) barrier.Barrier { return barrier.NewStaticFWay(p, o...) },
		"dtour":         func(p int, o ...barrier.Option) barrier.Barrier { return barrier.NewDynamicFWay(p, o...) },
		"optimized":     func(p int, o ...barrier.Option) barrier.Barrier { return barrier.New(p, o...) },
		"ring":          func(p int, o ...barrier.Option) barrier.Barrier { return barrier.NewRing(p, o...) },
		"hybrid": func(p int, o ...barrier.Option) barrier.Barrier {
			return barrier.NewHybrid(p, barrier.HybridConfig{}, o...)
		},
		"ndis2": func(p int, o ...barrier.Option) barrier.Barrier {
			return barrier.NewNWayDissemination(p, 2, o...)
		},
		// Group size 2 at the matrix's p=4 puts the straggler inside a
		// two-member group line with a live representative stage above it.
		"hier": func(p int, o ...barrier.Option) barrier.Barrier {
			return barrier.NewHierarchical(p, barrier.HierarchicalConfig{GroupSize: 2}, o...)
		},
	}
}

func policies() map[string]barrier.WaitPolicy {
	return map[string]barrier.WaitPolicy{
		"spin":      barrier.SpinWait(),
		"spinyield": barrier.SpinYieldWait(),
		"spinpark":  barrier.SpinParkWait(),
		"adaptive":  barrier.AdaptiveWait(),
	}
}

func TestMissingParticipantDetectedMatrix(t *testing.T) {
	const (
		p         = 4
		straggler = 2
		deadline  = 25 * time.Millisecond
		budget    = 30 * time.Second // failure bound: errors, not hangs
	)
	for aname, mk := range algorithms() {
		for pname, pol := range policies() {
			t.Run(aname+"/"+pname, func(t *testing.T) {
				wd := barrier.NewWatchdog(mk(p, barrier.WithWaitPolicy(pol)), barrier.WatchdogConfig{
					Deadline: deadline,
				})
				in := Wrap(wd, Fault{ID: straggler, Round: 1, Kind: Stall})

				errs := make([]error, p)
				var wg sync.WaitGroup
				for id := 0; id < p; id++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						for r := 0; r < 3; r++ {
							if err := in.WaitDeadline(id, budget); err != nil {
								errs[id] = err
								return
							}
						}
					}(id)
				}

				// Round 0 completes; in round 1 the straggler stalls before
				// arrival. The watchdog must report the stuck episode with
				// exactly the straggler missing. Early polls can catch the
				// healthy peers mid-arrival, so poll until the picture is
				// complete — it becomes stable once all three are waiting.
				var st barrier.Stall
				giveUp := time.Now().Add(20 * time.Second)
				for {
					var stalled bool
					if st, stalled = wd.Check(); stalled &&
						len(st.Missing) == 1 && len(st.Waiting) == p-1 {
						break
					}
					if time.Now().After(giveUp) {
						t.Fatalf("watchdog never reported the stall; last: %+v", st)
					}
					time.Sleep(time.Millisecond)
				}
				if st.Missing[0] != straggler {
					t.Errorf("Missing = %v, want [%d]", st.Missing, straggler)
				}
				if st.Age < deadline {
					t.Errorf("stall reported at age %v, before the %v deadline", st.Age, deadline)
				}

				// Release the straggler: the wedged episode completes, and
				// round 2 proves nothing was poisoned.
				in.Release()
				wg.Wait()
				for id, err := range errs {
					if err != nil {
						t.Errorf("participant %d: %v", id, err)
					}
				}
				if _, stalled := wd.Check(); stalled {
					t.Error("stall persists after the straggler was released")
				}
			})
		}
	}
}

// TestLateParticipantRecovers is the Delay variant of the matrix's
// scenario on a representative subset: a straggler that is merely late
// (shorter than the bounded-wait budget) must not produce errors, only
// a watchdog stall that clears by itself.
func TestLateParticipantRecovers(t *testing.T) {
	const p = 4
	for _, aname := range []string{"central", "dissemination", "optimized"} {
		mk := algorithms()[aname]
		t.Run(aname, func(t *testing.T) {
			wd := barrier.NewWatchdog(mk(p), barrier.WatchdogConfig{Deadline: 10 * time.Millisecond})
			in := Wrap(wd, Fault{ID: 1, Round: 0, Kind: Delay, Delay: 60 * time.Millisecond})
			wd.Start()
			defer wd.Stop()
			errs := make([]error, p)
			var wg sync.WaitGroup
			for id := 0; id < p; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for r := 0; r < 2; r++ {
						if err := in.WaitDeadline(id, 30*time.Second); err != nil {
							errs[id] = err
							return
						}
					}
				}(id)
			}
			wg.Wait()
			for id, err := range errs {
				if err != nil {
					t.Errorf("participant %d: %v", id, err)
				}
			}
			if s := wd.Snapshot(); s.Stalls == 0 {
				t.Error("a 60ms straggler under a 10ms deadline produced no stall report")
			} else if s.LastStall.Missing[0] != 1 {
				t.Errorf("stall names %v, want [1]", s.LastStall.Missing)
			}
			if _, stalled := wd.Check(); stalled {
				t.Error("stall persists after the late participant arrived")
			}
		})
	}
}
