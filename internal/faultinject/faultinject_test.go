package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"armbarrier/barrier"
)

func TestParseFault(t *testing.T) {
	cases := map[string]Fault{
		"2@5:stall":      {ID: 2, Round: 5, Kind: Stall},
		"0@0:delay:3ms":  {ID: 0, Round: 0, Kind: Delay, Delay: 3 * time.Millisecond},
		"1@9:drop":       {ID: 1, Round: 9, Kind: Drop},
		"3@1:panic":      {ID: 3, Round: 1, Kind: Panic},
		"7@2:stall:50ms": {ID: 7, Round: 2, Kind: Stall, Delay: 50 * time.Millisecond},
	}
	for spec, want := range cases {
		got, err := ParseFault(spec)
		if err != nil || got != want {
			t.Errorf("ParseFault(%q) = %+v, %v; want %+v", spec, got, err, want)
		}
		if rt, err := ParseFault(got.String()); err != nil || rt != want {
			t.Errorf("round trip of %q via %q = %+v, %v", spec, got, rt, err)
		}
	}
	for _, bad := range []string{"", "x", "1@2", "1@2:nap", "1@2:delay", "-1@0:stall", "a@0:stall"} {
		if f, err := ParseFault(bad); err == nil {
			t.Errorf("ParseFault(%q) accepted: %+v", bad, f)
		}
	}
	fs, err := ParseFaults("2@5:stall, 0@0:delay:3ms")
	if err != nil || len(fs) != 2 {
		t.Errorf("ParseFaults list = %v, %v", fs, err)
	}
	if fs, err := ParseFaults(""); err != nil || fs != nil {
		t.Errorf("ParseFaults(\"\") = %v, %v", fs, err)
	}
}

func TestWrapValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("out-of-range id", func() {
		Wrap(barrier.NewCentral(2), Fault{ID: 2, Kind: Stall})
	})
	mustPanic("duplicate fault", func() {
		Wrap(barrier.NewCentral(2), Fault{ID: 1, Round: 3, Kind: Stall}, Fault{ID: 1, Round: 3, Kind: Drop})
	})
}

// TestDelayFaultArrivesLate: the episode still completes, just later.
func TestDelayFaultArrivesLate(t *testing.T) {
	const p = 3
	in := Wrap(barrier.NewCentral(p), Fault{ID: 1, Round: 1, Kind: Delay, Delay: 30 * time.Millisecond})
	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < p; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			in.Wait(id)
			in.Wait(id)
		}(id)
	}
	wg.Wait()
	if e := time.Since(start); e < 30*time.Millisecond {
		t.Errorf("two episodes with a 30ms delay fault took only %v", e)
	}
	if in.Injected() != 1 {
		t.Errorf("Injected = %d, want 1", in.Injected())
	}
}

// TestStallFaultReleased: the stalled participant holds the episode
// until Release, then everyone completes.
func TestStallFaultReleased(t *testing.T) {
	const p = 2
	in := Wrap(barrier.NewCentral(p), Fault{ID: 1, Round: 0, Kind: Stall})
	done := make(chan error, p)
	for id := 0; id < p; id++ {
		go func(id int) { done <- in.WaitDeadline(id, 10*time.Second) }(id)
	}
	select {
	case err := <-done:
		t.Fatalf("episode completed while participant 1 was stalled: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	in.Release()
	for i := 0; i < p; i++ {
		if err := <-done; err != nil {
			t.Errorf("post-release episode: %v", err)
		}
	}
}

// TestStallSelfRelease: a stall with a duration un-wedges by itself.
func TestStallSelfRelease(t *testing.T) {
	const p = 2
	in := Wrap(barrier.NewCentral(p), Fault{ID: 0, Round: 0, Kind: Stall, Delay: 20 * time.Millisecond})
	var wg sync.WaitGroup
	for id := 0; id < p; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			in.Wait(id)
		}(id)
	}
	wg.Wait() // completing at all is the assertion
}

// TestDropFaultTimesOutPeers: the dropped participant never arrives, so
// a peer's bounded wait expires; after Release the dropper returns nil
// without having arrived.
func TestDropFaultTimesOutPeers(t *testing.T) {
	const p = 2
	in := Wrap(barrier.NewCentral(p), Fault{ID: 1, Round: 0, Kind: Drop})
	peer := make(chan error, 1)
	go func() { peer <- in.WaitDeadline(0, 50*time.Millisecond) }()
	err := <-peer
	if !errors.Is(err, barrier.ErrWaitTimeout) {
		t.Fatalf("peer of a dropped participant got %v, want a timeout", err)
	}
	in.Release()
	if err := in.WaitDeadline(1, time.Second); err != nil {
		t.Errorf("released dropper returned %v, want nil (it skips the episode)", err)
	}
}

// TestPanicFault: the injected panic carries participant and round.
func TestPanicFault(t *testing.T) {
	in := Wrap(barrier.NewCentral(1), Fault{ID: 0, Round: 0, Kind: Panic})
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "participant 0 round 0") {
			t.Errorf("injected panic = %v", r)
		}
	}()
	in.Wait(0)
}

// TestWaitDeadlineBudgetCoversStall: the stall consumes the caller's
// budget and the injector reports the timeout itself.
func TestWaitDeadlineBudgetCoversStall(t *testing.T) {
	in := Wrap(barrier.NewCentral(2), Fault{ID: 0, Round: 0, Kind: Stall})
	var te *barrier.TimeoutError
	err := in.WaitDeadline(0, 30*time.Millisecond)
	if !errors.As(err, &te) || te.ID != 0 {
		t.Fatalf("stalled bounded wait = %v, want *TimeoutError for participant 0", err)
	}
	if !strings.Contains(te.Barrier, "+fault") {
		t.Errorf("timeout names %q, want the injector", te.Barrier)
	}
}

func TestInjectorDelegation(t *testing.T) {
	b := barrier.NewCentral(2, barrier.WithWaitPolicy(barrier.SpinParkWait()))
	in := Wrap(b)
	in.EnableSpinCounts()
	if s, y := in.SpinCounts(0); s != 0 || y != 0 {
		t.Errorf("fresh SpinCounts = %d, %d", s, y)
	}
	if pk, wk := in.ParkCounts(0); pk != 0 || wk != 0 {
		t.Errorf("fresh ParkCounts = %d, %d", pk, wk)
	}
	if in.Name() != "central+fault" || in.Participants() != 2 || in.Inner() != barrier.Barrier(b) {
		t.Error("delegation identity mismatch")
	}
	in.Release()
	in.Release() // idempotent
}
